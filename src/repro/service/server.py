""":class:`CompileService` — an asyncio JSON-lines compile server,
scalable from one in-process engine to a multi-worker sharded cluster.

Two execution modes behind one wire protocol:

* **in-process** (default, ``workers=0``): one service fronts one
  :class:`~repro.engine.ExperimentEngine`; compiles run on the loop's
  default thread executor.  Simple, great for tests and warm
  disk-served traffic — but pure-Python compiles are GIL-bound, so
  CPU-heavy traffic serializes.
* **cluster** (``workers=N``): compiles run on a
  :class:`~repro.service.workers.WorkerPool` of N *processes*, each
  rebuilding its engine from one picklable
  :class:`~repro.engine.EngineSpec` — same backend topology everywhere,
  typically a consistent-hash-sharded on-disk store
  (``cache_dir``/``shards``), so the farm shares one coherent
  persistent cache while each worker keeps a private hot memory + unit
  tier.  Batches are deduplicated, **locality-sorted** (near-duplicate
  jobs ride one chunk to one worker's warm unit cache — the ROADMAP
  item 5 follow-up) and chunked across the pool; dead workers are
  respawned and their chunks retried.

**Backpressure**: ``queue_limit`` bounds admitted-but-unfinished
compile jobs.  A request that would exceed the bound is answered
*immediately* with a ``busy`` reply (the 429 of this wire protocol —
``{"ok": false, "busy": true, "retry": true}``) instead of being
buffered without bound; :class:`~repro.service.client.ServiceClient`
retries those with exponential backoff.  A single batch larger than
the whole queue is rejected with ``retry: false`` (it could never be
admitted).

**Request coalescing**: identical compile jobs in flight at the same
time are folded onto a single computation; late arrivals await the
same task and are counted as *coalesced*.

**Observability**: every request lands in per-endpoint latency
histograms; queue depth/high-water/rejections, worker utilization and
fault counters, cache hit rates and shard sizes are served by the
``metrics`` operation (:mod:`repro.service.metrics`) as
scrape-stable JSON — the CI SLO gate reads exactly this document.

:class:`ServiceThread` wraps server + event loop in a background
thread behind a context manager — the sync-world entry point examples,
tests and the docs use.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import threading

from ..engine import EngineSpec, ExperimentEngine, ShardedBackend
from ..obs.trace import NOOP_SPAN, SpanContext, attach, get_tracer
from .batching import (dedup_params, params_digest, plan_chunks,
                       sort_for_locality)
from .metrics import ServiceMetrics
from .protocol import (MAX_LINE_BYTES, compile_result_payload,
                       decode_message, encode_message, job_from_params)
from .workers import WorkerPool

__all__ = ["BusyRejection", "ClientStats", "CompileService",
           "start_service", "ServiceThread"]

#: Message keys that describe one compile job on the wire.
_JOB_PARAM_KEYS = ("machine", "pattern", "level", "target", "semantics",
                   "want_asm", "chaos")


class BusyRejection(Exception):
    """The bounded queue cannot admit this request right now."""

    def __init__(self, message: str, retry: bool = True) -> None:
        super().__init__(message)
        self.retry = retry


@dataclass
class ClientStats:
    """Counters of one client connection."""

    peer: str = ""
    requests: int = 0
    compiles: int = 0
    batch_jobs: int = 0
    coalesced: int = 0
    errors: int = 0
    busy: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {"peer": self.peer, "requests": self.requests,
                "compiles": self.compiles, "batch_jobs": self.batch_jobs,
                "coalesced": self.coalesced, "errors": self.errors,
                "busy": self.busy}


@dataclass
class _ServiceTotals:
    """Aggregate counters (mutated on the event-loop thread only).

    Disconnected clients fold into these, so the per-client table can
    hold *live* connections only without losing history."""

    connections: int = 0
    requests: int = 0
    compiles: int = 0
    batch_jobs: int = 0
    coalesced: int = 0
    errors: int = 0
    busy: int = 0

    def absorb(self, client: "ClientStats") -> None:
        self.compiles += client.compiles
        self.batch_jobs += client.batch_jobs


class CompileService:
    """Routes wire requests onto a shared engine or a worker pool."""

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 workers: int = 0,
                 engine_spec: Optional[EngineSpec] = None,
                 queue_limit: Optional[int] = None,
                 allow_chaos: bool = False,
                 max_retries: int = 2) -> None:
        self.workers = max(0, int(workers))
        self.engine_spec = engine_spec
        if self.workers > 0:
            if engine is not None:
                raise ValueError("a cluster rebuilds engines from an "
                                 "EngineSpec; pass engine_spec=, not a "
                                 "live engine")
            self.engine = None
            self.pool: Optional[WorkerPool] = WorkerPool(
                engine_spec if engine_spec is not None else EngineSpec(),
                self.workers, allow_chaos=allow_chaos,
                max_retries=max_retries)
        else:
            self.engine = engine if engine is not None else \
                ExperimentEngine()
            self.pool = None
        self.queue_limit = queue_limit
        self.metrics = ServiceMetrics(queue_limit=queue_limit)
        self.totals = _ServiceTotals()
        self.clients: Dict[str, ClientStats] = {}
        #: request digest / fingerprint -> in-flight task (coalescing).
        self._inflight: Dict[str, asyncio.Task] = {}
        self._shard_view: Optional[ShardedBackend] = None

    def close(self) -> None:
        if self.pool is not None:
            self.pool.shutdown()

    # -- connection handling ------------------------------------------------

    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self.totals.connections += 1
        name = f"client-{self.totals.connections}"
        peername = writer.get_extra_info("peername")
        client = ClientStats(peer=repr(peername) if peername else "unix")
        self.clients[name] = client              # live connections only
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(
                        {"ok": False, "error": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line, name, client)
                writer.write(encode_message(response))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            # Retire the per-client row (unbounded growth otherwise on a
            # long-lived server); its counters live on in the totals.
            self.totals.absorb(client)
            self.clients.pop(name, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, name: str,
                           client: ClientStats) -> Dict[str, Any]:
        client.requests += 1
        self.totals.requests += 1
        request_id = None
        op: Any = None
        span = NOOP_SPAN
        remote: Optional[SpanContext] = None
        started = time.perf_counter()
        try:
            message = decode_message(line)
            request_id = message.get("id")
            op = message.get("op")
            # Re-parent this request under the client's span when the
            # message carries a trace context (a recording remote parent
            # always records); otherwise the server samples on its own.
            remote = SpanContext.from_wire(message.get("trace"))
            tracer = get_tracer()
            span = tracer.span(f"service.{op}", parent=remote) \
                if remote is not None else tracer.span(f"service.{op}")
            result = await self._dispatch(op, message, name, client, span)
        except BusyRejection as busy:
            client.busy += 1
            self.totals.busy += 1
            self.metrics.reject()
            self.metrics.observe(str(op), time.perf_counter() - started,
                                 "busy")
            return self._finish_span(span, remote, "busy", {
                "id": request_id, "ok": False, "busy": True,
                "retry": busy.retry, "error": str(busy)})
        except Exception as exc:
            client.errors += 1
            self.totals.errors += 1
            self.metrics.observe(str(op) if op else "invalid",
                                 time.perf_counter() - started, "error")
            return self._finish_span(span, remote, "error", {
                "id": request_id, "ok": False,
                "error": f"{type(exc).__name__}: {exc}"})
        self.metrics.observe(str(op), time.perf_counter() - started, "ok")
        return self._finish_span(span, remote, "ok", {
            "id": request_id, "ok": True, "result": result})

    @staticmethod
    def _finish_span(span, remote: Optional[SpanContext], outcome: str,
                     response: Dict[str, Any]) -> Dict[str, Any]:
        """End the request span; when the request arrived with a trace
        context, piggyback this trace's finished spans (the service
        span, worker chunk spans already ingested, ...) on the response
        envelope so the client reassembles one connected trace."""
        if not span.recording:
            return response
        span.set(outcome=outcome)
        span.end()
        if remote is not None:
            response["spans"] = get_tracer().drain(span.trace_id)
        return response

    # -- operations ---------------------------------------------------------

    async def _dispatch(self, op: Any, message: Dict[str, Any], name: str,
                        client: ClientStats, span=NOOP_SPAN
                        ) -> Dict[str, Any]:
        if op == "ping":
            from .. import __version__
            return {"pong": True, "version": __version__}
        if op == "stats":
            return self.stats_payload()
        if op == "metrics":
            return self.metrics_payload()
        if op == "compile":
            return await self._compile_one(message, client, span)
        if op == "batch":
            return await self._compile_batch(message, client, span)
        raise ValueError(f"unknown operation {op!r}")

    # -- backpressure -------------------------------------------------------

    def _admit(self, n_jobs: int) -> None:
        """Admit *n_jobs* to the bounded queue or raise
        :class:`BusyRejection`.  Runs on the event-loop thread only, so
        check-then-enqueue is race-free."""
        if self.queue_limit is not None:
            if n_jobs > self.queue_limit:
                raise BusyRejection(
                    f"batch of {n_jobs} jobs exceeds the queue limit "
                    f"({self.queue_limit}); split it", retry=False)
            if self.metrics.queue_depth + n_jobs > self.queue_limit:
                raise BusyRejection(
                    f"server busy: {self.metrics.queue_depth} jobs "
                    f"pending (limit {self.queue_limit})")
        self.metrics.enqueue(n_jobs)

    @staticmethod
    def _job_params(message: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(message, dict):
            raise ValueError("batch jobs must be objects")
        return {key: message[key] for key in _JOB_PARAM_KEYS
                if key in message}

    # -- compile: shared plumbing -------------------------------------------

    async def _run_pooled(self, chunk: List[Dict[str, Any]],
                          n_jobs: int,
                          trace_ctx: Optional[Dict[str, str]] = None
                          ) -> Dict[str, Any]:
        """One chunk through the worker pool, with queue accounting.
        Worker spans piggybacked on the reply are ingested here so the
        request's final drain ships them back to the client."""
        assert self.pool is not None
        try:
            reply = await asyncio.wrap_future(
                self.pool.submit_chunk(chunk, trace_ctx))
        except BaseException:
            self.metrics.dequeue(n_jobs, 0.0)
            raise
        self.metrics.dequeue(n_jobs, float(reply.get("busy_s", 0.0)))
        if reply.get("spans"):
            get_tracer().ingest(reply["spans"])
        return reply

    async def _run_compile(self, job, ctx: Optional[SpanContext] = None):
        loop = asyncio.get_running_loop()
        started = time.perf_counter()

        def run():
            # Executor threads do not inherit the contextvar — re-attach
            # the request span so engine/cache spans parent under it.
            with attach(ctx):
                return self.engine.compile_machine(
                    job.machine, pattern=job.pattern, level=job.level,
                    target=job.target, semantics=job.semantics)

        try:
            return await loop.run_in_executor(None, run)
        finally:
            self.metrics.dequeue(1, time.perf_counter() - started)

    # -- compile: single ----------------------------------------------------

    async def _compile_one(self, message: Dict[str, Any],
                           client: ClientStats,
                           span=NOOP_SPAN) -> Dict[str, Any]:
        if self.pool is not None:
            return await self._compile_one_pooled(message, client, span)
        loop = asyncio.get_running_loop()
        # Deserializing and fingerprinting a machine is CPU work
        # proportional to its size — executor, not event loop.
        job = await loop.run_in_executor(
            None, lambda: job_from_params(message))
        key = await loop.run_in_executor(None, job.fingerprint)
        task = self._inflight.get(key)
        if task is None:
            self._admit(1)
            task = loop.create_task(self._run_compile(
                job, span.ctx if span.recording else None))
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None))
        else:
            client.coalesced += 1
            self.totals.coalesced += 1
        client.compiles += 1
        # shield: one requester disconnecting must not cancel the shared
        # computation other requesters of the same key are awaiting.
        result = await asyncio.shield(task)
        return await loop.run_in_executor(
            None, lambda: compile_result_payload(
                job, result, want_asm=bool(message.get("want_asm"))))

    async def _compile_one_pooled(self, message: Dict[str, Any],
                                  client: ClientStats,
                                  span=NOOP_SPAN) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        params = self._job_params(message)
        # Coalescing key: canonical request bytes.  No machine
        # deserialization on the server — content fingerprinting is the
        # worker's job.
        key = await loop.run_in_executor(
            None, lambda: params_digest(params))
        task = self._inflight.get(key)
        if task is None:
            self._admit(1)
            task = loop.create_task(self._run_pooled(
                [params], 1,
                span.ctx.to_wire() if span.recording else None))
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None))
        else:
            client.coalesced += 1
            self.totals.coalesced += 1
        client.compiles += 1
        reply = await asyncio.shield(task)
        return reply["payloads"][0]

    # -- compile: batch -----------------------------------------------------

    async def _compile_batch(self, message: Dict[str, Any],
                             client: ClientStats,
                             span=NOOP_SPAN) -> Dict[str, Any]:
        raw_jobs = message.get("jobs")
        if not isinstance(raw_jobs, list):
            raise ValueError("batch needs a 'jobs' array")
        if self.pool is not None:
            return await self._compile_batch_pooled(raw_jobs, client, span)
        client.batch_jobs += len(raw_jobs)
        self._admit(len(raw_jobs))
        ctx = span.ctx if span.recording else None

        def run_whole_batch():
            # Deserialization and planning are CPU work proportional to
            # the grid — keep them off the event-loop thread too.
            with attach(ctx):
                jobs = [job_from_params(params) for params in raw_jobs]
                results, plan = self.engine.run_batch_planned(jobs)
            return [
                compile_result_payload(
                    job, result, want_asm=bool(params.get("want_asm")))
                for params, job, result in zip(raw_jobs, jobs, results)
            ], plan.n_deduplicated

        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            payloads, deduplicated = await loop.run_in_executor(
                None, run_whole_batch)
        finally:
            self.metrics.dequeue(len(raw_jobs),
                                 time.perf_counter() - started)
        return {"results": payloads, "deduplicated": deduplicated}

    async def _compile_batch_pooled(self, raw_jobs: List[Any],
                                    client: ClientStats,
                                    span=NOOP_SPAN
                                    ) -> Dict[str, Any]:
        assert self.pool is not None
        client.batch_jobs += len(raw_jobs)
        trace_ctx = span.ctx.to_wire() if span.recording else None
        loop = asyncio.get_running_loop()

        def shape_batch():
            cleaned = [self._job_params(params) for params in raw_jobs]
            order, unique = dedup_params(cleaned)
            # Near-duplicates adjacent, then contiguous chunks: one
            # machine family rides one chunk to one worker's warm unit
            # cache instead of being sprayed across the pool.
            ordered = sort_for_locality(list(unique.items()))
            chunks = plan_chunks(ordered, 2 * self.pool.workers)
            return order, len(unique), chunks

        order, n_unique, chunks = await loop.run_in_executor(
            None, shape_batch)
        self._admit(n_unique)
        dispatched = [
            loop.create_task(self._run_pooled(
                [params for _, params in chunk], len(chunk), trace_ctx))
            for chunk in chunks
        ]
        try:
            replies = await asyncio.gather(*dispatched)
        except BaseException:
            for task in dispatched:    # queue accounting still drains
                task.cancel()          # via _run_pooled's except path
            raise
        by_digest: Dict[str, Dict[str, Any]] = {}
        for chunk, reply in zip(chunks, replies):
            for (digest, _), payload in zip(chunk, reply["payloads"]):
                by_digest[digest] = payload
        return {"results": [by_digest[digest] for digest in order],
                "deduplicated": len(order) - n_unique}

    # -- introspection ------------------------------------------------------

    def _cache_counters(self) -> Dict[str, Any]:
        """One dict of cache counters, whichever mode is running."""
        if self.pool is not None:
            agg = self.pool.aggregate_stats()
            lookups = agg["hits"] + agg["misses"]
            agg["lookups"] = lookups
            agg["hit_rate"] = agg["hits"] / lookups if lookups else 0.0
            return agg
        # snapshot() reads every counter under one lock acquisition —
        # no torn hits/lookups pairs while compiles are in flight.
        stats = self.engine.stats.snapshot()
        units = self.engine.unit_stats.snapshot()
        delta = self.engine.delta_stats
        return {
            "jobs": self.engine.jobs,
            "hits": stats["hits"], "misses": stats["misses"],
            "disk_hits": stats["disk_hits"],
            "lookups": stats["lookups"], "hit_rate": stats["hit_rate"],
            "unit_hits": units["hits"], "unit_misses": units["misses"],
            "unit_disk_hits": units["disk_hits"],
            "reused_units": delta.reused_units,
            "compiled_units": delta.compiled_units,
        }

    def _shard_sizes(self) -> Optional[Dict[str, int]]:
        """Entry counts per store shard, when a sharded disk tier is in
        reach (directly on the engine backend, or rebuilt read-only
        from the cluster's spec)."""
        backend = None
        if self.engine is not None:
            backend = getattr(self.engine.cache, "backend", None)
            disk = getattr(backend, "disk", None)       # tiered?
            if isinstance(disk, ShardedBackend):
                backend = disk
        elif self.engine_spec is not None and \
                self.engine_spec.cache_dir and self.engine_spec.shards > 1:
            if self._shard_view is None:
                self._shard_view = ShardedBackend.over_directory(
                    self.engine_spec.cache_dir, self.engine_spec.shards)
            backend = self._shard_view
        if isinstance(backend, ShardedBackend):
            return backend.shard_sizes()
        return None

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``metrics`` operation: scrape-stable cluster telemetry."""
        cache = self._cache_counters()
        pool_stats = self.pool.stats.as_dict() if self.pool is not None \
            else None
        payload = self.metrics.payload(
            workers=self.workers, pool_stats=pool_stats, cache=cache,
            shard_sizes=self._shard_sizes())
        if self.pool is not None:
            payload["workers"]["per_worker"] = self.pool.per_worker()
        payload["service"] = {
            "connections": self.totals.connections,
            "requests": self.totals.requests,
            "errors": self.totals.errors,
            "busy": self.totals.busy,
            "coalesced": self.totals.coalesced,
        }
        return payload

    def stats_payload(self) -> Dict[str, Any]:
        cache = self._cache_counters()
        return {
            "engine": {
                "jobs": cache.get("jobs", self.workers),
                "hits": cache["hits"],
                "disk_hits": cache["disk_hits"],
                "misses": cache["misses"],
                "lookups": cache["lookups"],
                "hit_rate": cache["hit_rate"],
            },
            # The per-unit cache tier behind delta compiles: batch
            # clients sharing structure (same action bodies across
            # machine variants) show up as unit hits even when every
            # whole-module fingerprint is new.
            "units": {
                "hits": cache.get("unit_hits", 0),
                "disk_hits": cache.get("unit_disk_hits", 0),
                "misses": cache.get("unit_misses", 0),
                "reused": cache.get("reused_units", 0),
                "compiled": cache.get("compiled_units", 0),
            },
            "service": {
                "connections": self.totals.connections,
                "requests": self.totals.requests,
                "compiles": self.totals.compiles +
                sum(c.compiles for c in self.clients.values()),
                "batch_jobs": self.totals.batch_jobs +
                sum(c.batch_jobs for c in self.clients.values()),
                "coalesced": self.totals.coalesced,
                "errors": self.totals.errors,
                "busy": self.totals.busy,
            },
            # live connections only; disconnected clients are folded
            # into the service totals above.
            "clients": {name: client.as_dict()
                        for name, client in sorted(self.clients.items())},
        }


async def start_service(engine: Optional[ExperimentEngine] = None,
                        socket_path: Optional[str] = None,
                        host: Optional[str] = None,
                        port: Optional[int] = None,
                        workers: int = 0,
                        engine_spec: Optional[EngineSpec] = None,
                        queue_limit: Optional[int] = None,
                        allow_chaos: bool = False,
                        max_retries: int = 2,
                        ) -> Tuple[asyncio.AbstractServer, CompileService]:
    """Start serving on a unix socket (*socket_path*) or TCP
    (*host*/*port*); returns ``(asyncio server, service)``.

    ``workers > 0`` runs compiles on a process pool built from
    *engine_spec* (see :class:`CompileService`)."""
    service = CompileService(engine, workers=workers,
                             engine_spec=engine_spec,
                             queue_limit=queue_limit,
                             allow_chaos=allow_chaos,
                             max_retries=max_retries)
    if socket_path is not None:
        server = await asyncio.start_unix_server(
            service.handle_client, path=socket_path, limit=MAX_LINE_BYTES)
    elif port is not None:
        server = await asyncio.start_server(
            service.handle_client, host=host or "127.0.0.1", port=port,
            limit=MAX_LINE_BYTES)
    else:
        raise ValueError("need socket_path or port to serve on")
    return server, service


class ServiceThread:
    """A compile service on a background thread (context manager).

    With no address arguments a throwaway unix socket is created::

        with ServiceThread(engine) as handle:
            with handle.client() as client:
                client.ping()

    Cluster mode — worker processes, sharded store, bounded queue::

        with ServiceThread(workers=2, shards=2, cache_dir=store_dir,
                           queue_limit=64) as handle:
            ...
    """

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 socket_path: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 workers: int = 0,
                 shards: int = 1,
                 cache_dir: Optional[str] = None,
                 backend: Optional[str] = None,
                 delta: bool = True,
                 engine_spec: Optional[EngineSpec] = None,
                 queue_limit: Optional[int] = None,
                 allow_chaos: bool = False,
                 max_retries: int = 2) -> None:
        self.workers = max(0, int(workers))
        if self.workers > 0 and engine_spec is None:
            engine_spec = EngineSpec(backend=backend, cache_dir=cache_dir,
                                     shards=shards, delta=delta)
        if self.workers == 0 and engine is None and \
                (cache_dir or backend or shards > 1):
            engine = ExperimentEngine(backend=backend, cache_dir=cache_dir,
                                      shards=shards, delta=delta)
        self.engine = engine
        self.engine_spec = engine_spec
        self.queue_limit = queue_limit
        self.allow_chaos = allow_chaos
        self.max_retries = max_retries
        self.host = host
        self.port = port
        self._own_socket_dir: Optional[str] = None
        if socket_path is None and port is None:
            self._own_socket_dir = tempfile.mkdtemp(prefix="repro-service-")
            socket_path = os.path.join(self._own_socket_dir, "service.sock")
        self.socket_path = socket_path
        self.server: Optional[asyncio.AbstractServer] = None
        self.service: Optional[CompileService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            start_service(self.engine, socket_path=self.socket_path,
                          host=self.host, port=self.port,
                          workers=self.workers,
                          engine_spec=self.engine_spec,
                          queue_limit=self.queue_limit,
                          allow_chaos=self.allow_chaos,
                          max_retries=self.max_retries), self._loop)
        self.server, self.service = future.result(timeout=30)
        if self.socket_path is None:
            self.port = self.server.sockets[0].getsockname()[1]
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def wait_workers_ready(self, timeout: float = 60.0) -> int:
        """Block until every worker process is up (cluster mode); load
        generators call this so spin-up never skews a measurement."""
        if self.service is None or self.service.pool is None:
            return 0
        return self.service.pool.wait_ready(timeout=timeout)

    def stop(self) -> None:
        if self._loop is None:
            return
        if self.server is not None:
            async def _close(server=self.server):
                server.close()
                await server.wait_closed()
            asyncio.run_coroutine_threadsafe(_close(),
                                             self._loop).result(timeout=30)
        if self.service is not None:
            self.service.close()
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop.close()
        self._loop = self._thread = self.server = None
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._own_socket_dir and os.path.isdir(self._own_socket_dir):
            try:
                os.rmdir(self._own_socket_dir)
            except OSError:
                pass

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- conveniences -------------------------------------------------------

    def client(self, **kwargs):
        """A :class:`~repro.service.client.ServiceClient` for this
        server's address (kwargs pass through, e.g. backoff knobs)."""
        from .client import ServiceClient
        if self.socket_path is not None:
            return ServiceClient(socket_path=self.socket_path, **kwargs)
        return ServiceClient(host=self.host, port=self.port, **kwargs)

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"
