"""Mixed-workload load generator for the compile service.

This is the measurement core behind ``python -m repro.service loadgen``
and the CI SLO gate (``scripts/check_service_slo.py``).  Three parts:

* :func:`build_corpus` — a deterministic *mixed* batch: structured
  workload families (:mod:`repro.experiments.workload`) with mutant
  chains hanging off each parent (the near-duplicate population the
  locality sort exists for), fuzz-generated machines
  (:mod:`repro.fuzz.generate`) for shape diversity, plus a fraction of
  exact duplicates (the coalescing/dedup population) — shuffled, then
  *screened* so every job in the corpus is known-compilable (a fuzz
  draw a pattern rejects would otherwise poison throughput numbers
  with error replies).
* :func:`run_load` — drive the corpus through N client threads in
  fixed-size batches against any address, collecting wall-clock
  throughput, exact request-latency percentiles (an
  ``exact=True`` :class:`repro.obs.metrics.Histogram` retaining raw
  samples, not bucketed — the load generator can afford them) and
  busy-retry counts.  When tracing is on, the whole run is one
  ``loadgen.run`` span and every batch round-trip hangs under it.
* :func:`verify_payloads` — recompile the corpus on a local reference
  engine and demand byte-identical payloads; the cluster earns its
  speedup only if every served answer matches the in-process compiler
  exactly.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..codegen import CodegenError
from ..engine import ExperimentEngine
from ..experiments.workload import (WorkloadSpec, generate_machine,
                                    mutate_one_transition)
from ..fuzz.generate import DEFAULT_PROFILES, random_machine
from ..obs.metrics import Histogram
from ..obs.trace import attach, span as _span
from .protocol import compile_params, compile_result_payload, job_from_params

__all__ = ["LoadgenSpec", "LoadReport", "build_corpus", "run_load",
           "verify_payloads"]


@dataclass(frozen=True)
class LoadgenSpec:
    """Shape of one generated corpus (deterministic in ``seed``)."""

    machines: int = 3            # structured workload families
    mutants: int = 3             # near-duplicate chain per family
    fuzz_machines: int = 4       # fuzz-generated shape diversity
    patterns: Tuple[str, ...] = ("nested-switch", "state-table")
    levels: Tuple[str, ...] = ("O0", "O2")
    targets: Tuple[Optional[str], ...] = (None, "rt16")
    duplicate_fraction: float = 0.15
    asm_fraction: float = 0.1
    seed: int = 20260808


def build_corpus(spec: LoadgenSpec = LoadgenSpec(),
                 screen: bool = True) -> List[Dict[str, Any]]:
    """A shuffled list of wire-level compile-params objects.

    With ``screen=True`` (default) every job is pre-compiled on a
    scratch engine and jobs a generator rejects (``CodegenError``) are
    dropped, so load runs measure throughput, not error handling.
    """
    rng = Random(spec.seed)
    machines: List[Any] = []
    for index in range(spec.machines):
        parent = generate_machine(WorkloadSpec(
            n_live=4 + index, events_per_state=2,
            seed=spec.seed + index, name=f"LoadFam{index}"))
        machines.append(parent)
        for mutant_index in range(spec.mutants):
            machines.append(mutate_one_transition(parent, mutant_index))
    for index in range(spec.fuzz_machines):
        profile = DEFAULT_PROFILES[index % len(DEFAULT_PROFILES)]
        machine, _alphabet, _features = random_machine(
            rng, profile, name=f"LoadFuzz{index}")
        machines.append(machine)

    jobs: List[Dict[str, Any]] = []
    for index, machine in enumerate(machines):
        for pattern in spec.patterns:
            jobs.append(compile_params(
                machine, pattern=pattern,
                level=spec.levels[index % len(spec.levels)],
                target=spec.targets[index % len(spec.targets)],
                want_asm=rng.random() < spec.asm_fraction))

    n_duplicates = int(len(jobs) * spec.duplicate_fraction)
    jobs.extend(rng.choice(jobs) for _ in range(n_duplicates))
    rng.shuffle(jobs)

    if screen:
        scratch = ExperimentEngine()
        screened = []
        for params in jobs:
            job = job_from_params(params)
            try:
                scratch.compile_machine(job.machine, pattern=job.pattern,
                                        level=job.level, target=job.target,
                                        semantics=job.semantics)
            except CodegenError:
                continue
            screened.append(params)
        jobs = screened
    return jobs


@dataclass
class LoadReport:
    """What one :func:`run_load` run measured."""

    jobs: int
    unique_jobs: int
    elapsed_s: float
    jobs_per_sec: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    busy_retries: int
    clients: int
    batch_size: int
    #: served result payloads, in corpus order.
    payloads: List[Dict[str, Any]] = field(repr=False, default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {"jobs": self.jobs, "unique_jobs": self.unique_jobs,
                "elapsed_s": self.elapsed_s,
                "jobs_per_sec": self.jobs_per_sec,
                "p50_ms": self.p50_ms, "p90_ms": self.p90_ms,
                "p99_ms": self.p99_ms,
                "busy_retries": self.busy_retries,
                "clients": self.clients, "batch_size": self.batch_size}


def run_load(make_client: Callable[[], Any],
             corpus: Sequence[Dict[str, Any]],
             batch_size: int = 8,
             clients: int = 2) -> LoadReport:
    """Drive *corpus* through the service via *clients* concurrent
    connections in batches of *batch_size*; returns a
    :class:`LoadReport` with payloads in corpus order.

    *make_client* builds one connected
    :class:`~repro.service.client.ServiceClient`-compatible object per
    thread (e.g. ``handle.client`` of a
    :class:`~repro.service.server.ServiceThread`).
    """
    corpus = list(corpus)
    clients = max(1, int(clients))
    batch_size = max(1, int(batch_size))
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(corpus)
    # One thread-safe exact histogram shared by every driver thread:
    # raw samples, nearest-rank percentiles — the same numbers the
    # service's bucketed view approximates.
    latency = Histogram("loadgen_batch_seconds",
                        "per-batch round-trip latency", exact=True)
    busy_counts = [0] * clients
    errors: List[BaseException] = []
    # Contiguous batch assignment: batch b goes to thread b % clients.
    batches = [(start, corpus[start:start + batch_size])
               for start in range(0, len(corpus), batch_size)]
    run_span = _span("loadgen.run")
    if run_span.recording:
        run_span.set(jobs=len(corpus), clients=clients,
                     batch_size=batch_size)

    def drive(thread_index: int) -> None:
        try:
            client = make_client()
        except Exception as exc:          # pragma: no cover - setup only
            errors.append(exc)
            return
        try:
            # threading.Thread targets do not inherit the contextvar —
            # re-attach so each client.batch span parents under the run.
            with attach(run_span.ctx if run_span.recording else None):
                for batch_index, (start, batch) in enumerate(batches):
                    if batch_index % clients != thread_index:
                        continue
                    began = time.perf_counter()
                    results = client.submit_batch(batch)
                    latency.record(time.perf_counter() - began)
                    for offset, payload in enumerate(results):
                        payloads[start + offset] = payload
            busy_counts[thread_index] = getattr(
                client, "busy_retries_used", 0)
        except BaseException as exc:
            errors.append(exc)
        finally:
            close = getattr(client, "close", None)
            if close is not None:
                close()

    threads = [threading.Thread(target=drive, args=(index,),
                                name=f"loadgen-{index}")
               for index in range(clients)]
    started = time.perf_counter()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        run_span.end()
    if errors:
        raise errors[0]

    unique = {json.dumps(params, sort_keys=True) for params in corpus}
    return LoadReport(
        jobs=len(corpus), unique_jobs=len(unique), elapsed_s=elapsed,
        jobs_per_sec=len(corpus) / elapsed if elapsed > 0 else 0.0,
        p50_ms=(latency.percentile(0.50) or 0.0) * 1000.0,
        p90_ms=(latency.percentile(0.90) or 0.0) * 1000.0,
        p99_ms=(latency.percentile(0.99) or 0.0) * 1000.0,
        busy_retries=sum(busy_counts), clients=clients,
        batch_size=batch_size, payloads=list(payloads))


def verify_payloads(corpus: Sequence[Dict[str, Any]],
                    payloads: Sequence[Optional[Dict[str, Any]]],
                    engine: Optional[ExperimentEngine] = None
                    ) -> List[int]:
    """Indices whose served payload differs from an in-process
    reference compile (empty list == byte-identical service).

    Comparison is canonical-JSON equality of the full result payload —
    fingerprints, sizes, per-function sizes, pass statistics and (when
    requested) the assembly listing all must match.
    """
    reference = engine if engine is not None else ExperimentEngine()
    divergent: List[int] = []
    for index, (params, payload) in enumerate(zip(corpus, payloads)):
        job = job_from_params(params)
        result = reference.compile_machine(
            job.machine, pattern=job.pattern, level=job.level,
            target=job.target, semantics=job.semantics)
        expected = compile_result_payload(
            job, result, want_asm=bool(params.get("want_asm")))
        if payload is None or \
                json.dumps(expected, sort_keys=True) != \
                json.dumps(payload, sort_keys=True):
            divergent.append(index)
    return divergent
