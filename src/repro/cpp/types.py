"""Type system of the C++ subset.

The subset is what embedded state-machine code generators actually emit:
``int``/``bool``/``void``, enums, pointers, fixed-size arrays, classes
with single inheritance and virtual functions, and function types for
member-function pointers (used by the state-transition-table pattern).

Types are immutable value objects; ``sizeof``/alignment follow a 32-bit
ILP32 target (the RT32 backend), which is what the paper's embedded
setting implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Type", "VoidType", "IntType", "BoolType", "EnumType",
           "PointerType", "ArrayType", "ClassRefType", "FuncPtrType",
           "VOID", "INT", "BOOL", "size_of"]

POINTER_SIZE = 4  # ILP32


class Type:
    """Base class for types (immutable)."""


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """32-bit signed integer."""

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class EnumType(Type):
    """A named enumeration (represented as int at runtime)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassRefType(Type):
    """Reference to a class by name (used for fields/pointers)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FuncPtrType(Type):
    """Pointer to function / member function (table pattern callbacks)."""

    ret: Type
    params: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}(*)({params})"


VOID = VoidType()
INT = IntType()
BOOL = BoolType()


def size_of(tp: Type, class_sizes=None) -> int:
    """Byte size of *tp* on the RT32 target.

    ``class_sizes`` maps class name -> byte size for by-value class
    fields (filled in by the compiler frontend's layout pass).
    """
    if isinstance(tp, (IntType, BoolType, EnumType)):
        return 4  # bool stored as a word, typical of 32-bit embedded ABIs
    if isinstance(tp, (PointerType, FuncPtrType)):
        return POINTER_SIZE
    if isinstance(tp, ArrayType):
        return tp.length * size_of(tp.element, class_sizes)
    if isinstance(tp, ClassRefType):
        if class_sizes and tp.name in class_sizes:
            return class_sizes[tp.name]
        raise ValueError(f"unknown class size for {tp.name!r}")
    if isinstance(tp, VoidType):
        raise ValueError("void has no size")
    raise ValueError(f"size_of: unhandled type {tp!r}")
