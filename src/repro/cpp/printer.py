"""Pretty-printer: C++ subset AST -> compilable C++ source text.

The experiments feed the AST straight into MGCC, but the printed form is
what a user of the code generators would check into their firmware tree;
examples print it, and golden tests pin the generator output shape.
"""

from __future__ import annotations

from typing import List, Union

from . import ast as cpp
from .types import ArrayType, FuncPtrType, PointerType, Type

__all__ = ["print_unit", "print_expr", "print_stmt"]

_INDENT = "    "


def print_expr(expr: cpp.Expr) -> str:
    """Render one expression."""
    if isinstance(expr, cpp.IntLit):
        return str(expr.value)
    if isinstance(expr, cpp.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, cpp.NullPtr):
        return "0"
    if isinstance(expr, cpp.EnumRef):
        return expr.enumerator
    if isinstance(expr, cpp.Var):
        return expr.name
    if isinstance(expr, cpp.ThisExpr):
        return "this"
    if isinstance(expr, cpp.FieldAccess):
        return f"{_postfix(expr.obj)}->{expr.field_name}"
    if isinstance(expr, cpp.Unary):
        return f"{expr.op}{_prefix_operand(expr.operand)}"
    if isinstance(expr, cpp.Binary):
        return (f"{_operand(expr.lhs)} {expr.op} {_operand(expr.rhs)}")
    if isinstance(expr, cpp.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, cpp.MethodCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{_postfix(expr.obj)}->{expr.method}({args})"
    if isinstance(expr, cpp.IndirectCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"({print_expr(expr.target)})({args})"
    if isinstance(expr, cpp.Index):
        return f"{_postfix(expr.array)}[{print_expr(expr.index)}]"
    if isinstance(expr, cpp.AddrOf):
        return f"&{_prefix_operand(expr.operand)}"
    if isinstance(expr, cpp.FuncRef):
        return f"&{expr.func}"
    if isinstance(expr, cpp.Cast):
        return f"({_type_name(expr.to)}){_prefix_operand(expr.operand)}"
    raise TypeError(f"unprintable expression {expr!r}")


def _operand(expr: cpp.Expr) -> str:
    """Parenthesize non-atomic binary operands (conservative but readable)."""
    text = print_expr(expr)
    if isinstance(expr, (cpp.Binary,)):
        return f"({text})"
    return text


def _prefix_operand(expr: cpp.Expr) -> str:
    text = print_expr(expr)
    if isinstance(expr, (cpp.Binary, cpp.Unary)):
        return f"({text})"
    return text


def _postfix(expr: cpp.Expr) -> str:
    text = print_expr(expr)
    if isinstance(expr, (cpp.Binary, cpp.Unary, cpp.Cast, cpp.AddrOf)):
        return f"({text})"
    return text


def _type_name(tp: Type, declarator: str = "") -> str:
    """Render a type, wrapping *declarator* where C syntax requires."""
    if isinstance(tp, ArrayType):
        inner = _type_name(tp.element, f"{declarator}[{tp.length}]")
        return inner
    if isinstance(tp, FuncPtrType):
        params = ", ".join(_type_name(p) for p in tp.params)
        return f"{_type_name(tp.ret)} (*{declarator})({params})"
    if isinstance(tp, PointerType):
        base = _type_name(tp.pointee)
        return f"{base}* {declarator}".rstrip() if declarator else f"{base}*"
    base = str(tp)
    return f"{base} {declarator}".rstrip() if declarator else base


def _declare(tp: Type, name: str) -> str:
    if isinstance(tp, (ArrayType, FuncPtrType)):
        return _type_name(tp, name)
    return f"{_type_name(tp)} {name}"


def print_stmt(stmt: cpp.Stmt, indent: int = 0) -> List[str]:
    """Render one statement as a list of lines."""
    pad = _INDENT * indent
    if isinstance(stmt, cpp.Block):
        lines = [pad + "{"]
        for inner in stmt.statements:
            lines.extend(print_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, cpp.ExprStmt):
        return [f"{pad}{print_expr(stmt.expr)};"]
    if isinstance(stmt, cpp.Assign):
        return [f"{pad}{print_expr(stmt.lhs)} = {print_expr(stmt.rhs)};"]
    if isinstance(stmt, cpp.VarDecl):
        decl = _declare(stmt.var_type, stmt.name)
        if stmt.init is not None:
            return [f"{pad}{decl} = {print_expr(stmt.init)};"]
        return [f"{pad}{decl};"]
    if isinstance(stmt, cpp.If):
        lines = [f"{pad}if ({print_expr(stmt.cond)})"]
        lines.extend(print_stmt(stmt.then_body, indent))
        if stmt.else_body is not None:
            lines.append(f"{pad}else")
            lines.extend(print_stmt(stmt.else_body, indent))
        return lines
    if isinstance(stmt, cpp.While):
        lines = [f"{pad}while ({print_expr(stmt.cond)})"]
        lines.extend(print_stmt(stmt.body, indent))
        return lines
    if isinstance(stmt, cpp.Switch):
        lines = [f"{pad}switch ({print_expr(stmt.subject)})", pad + "{"]
        for case in stmt.cases:
            for value in case.values:
                lines.append(f"{pad}case {print_expr(value)}:")
            for inner in case.body.statements:
                lines.extend(print_stmt(inner, indent + 1))
            if not case.falls_through:
                lines.append(f"{_INDENT * (indent + 1)}break;")
        if stmt.default is not None:
            lines.append(f"{pad}default:")
            for inner in stmt.default.statements:
                lines.extend(print_stmt(inner, indent + 1))
            lines.append(f"{_INDENT * (indent + 1)}break;")
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, cpp.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, cpp.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {print_expr(stmt.value)};"]
    raise TypeError(f"unprintable statement {stmt!r}")


def _print_initializer(init: Union[cpp.Expr, cpp.Initializer]) -> str:
    if isinstance(init, cpp.StructInit):
        return "{ " + ", ".join(_print_initializer(v)
                                for v in init.values) + " }"
    if isinstance(init, cpp.ArrayInit):
        return "{\n    " + ",\n    ".join(
            _print_initializer(v) for v in init.elements) + "\n}"
    return print_expr(init)


def _print_method(cls: cpp.ClassDecl, method: cpp.Method,
                  lines: List[str]) -> None:
    qual = "static " if method.is_static else (
        "virtual " if method.is_virtual else "")
    params = ", ".join(_declare(p.param_type, p.name)
                       for p in method.params)
    ret = _type_name(method.ret)
    if method.body is None:
        lines.append(f"{_INDENT}{qual}{ret} {method.name}({params}) = 0;")
        return
    lines.append(f"{_INDENT}{qual}{ret} {method.name}({params})")
    for line in print_stmt(method.body, 1):
        lines.append(line)


def print_unit(unit: cpp.TranslationUnit) -> str:
    """Render a translation unit as C++ source text."""
    lines: List[str] = [f"// generated translation unit: {unit.name}", ""]
    for enum in unit.enums:
        lines.append(f"enum {enum.name}" + " {")
        for i, enumerator in enumerate(enum.enumerators):
            comma = "," if i + 1 < len(enum.enumerators) else ""
            lines.append(f"{_INDENT}{enumerator} = {i}{comma}")
        lines.append("};")
        lines.append("")
    for ext in unit.externs:
        params = ", ".join(_declare(p.param_type, p.name)
                           for p in ext.params)
        lines.append(f'extern "C" {_type_name(ext.ret)} '
                     f'{ext.name}({params});')
    if unit.externs:
        lines.append("")
    for cls in unit.classes:
        base = f" : public {cls.base}" if cls.base else ""
        lines.append(f"class {cls.name}{base}" + " {")
        lines.append("public:")
        for fld in cls.fields:
            lines.append(f"{_INDENT}{_declare(fld.field_type, fld.name)};")
        for method in cls.methods:
            _print_method(cls, method, lines)
        lines.append("};")
        lines.append("")
    for gv in unit.globals:
        const = "const " if gv.is_const else ""
        decl = _declare(gv.var_type, gv.name)
        if gv.init is not None:
            lines.append(f"{const}{decl} = {_print_initializer(gv.init)};")
        else:
            lines.append(f"{const}{decl};")
    if unit.globals:
        lines.append("")
    for fn in unit.functions:
        params = ", ".join(_declare(p.param_type, p.name)
                           for p in fn.params)
        lines.append(f"{_type_name(fn.ret)} {fn.name}({params})")
        lines.extend(print_stmt(fn.body, 0))
        lines.append("")
    return "\n".join(lines)
