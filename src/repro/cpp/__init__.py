"""C++ subset: AST, type system, pretty printer."""

from . import ast
from .printer import print_expr, print_stmt, print_unit
from .types import (ArrayType, BOOL, BoolType, ClassRefType, EnumType,
                    FuncPtrType, INT, IntType, POINTER_SIZE, PointerType,
                    Type, VOID, VoidType, size_of)

__all__ = [
    "ast", "print_expr", "print_stmt", "print_unit",
    "ArrayType", "BOOL", "BoolType", "ClassRefType", "EnumType",
    "FuncPtrType", "INT", "IntType", "POINTER_SIZE", "PointerType",
    "Type", "VOID", "VoidType", "size_of",
]
