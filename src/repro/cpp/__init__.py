"""C++ subset: AST, type system, pretty printer.

The hand-off format between code generation and the MGCC frontend: the
generators build a :class:`~.ast.TranslationUnit` (classes, enums,
globals, ``extern "C"`` declarations), the frontend lowers it, and
:func:`print_unit` renders human-readable source for inspection and
golden tests.  Main public names: :mod:`.ast` (node classes),
:func:`print_unit` / :func:`print_stmt` / :func:`print_expr`, and the
type constructors (:data:`INT`, :data:`BOOL`, :class:`PointerType`,
:class:`ClassRefType`, :class:`ArrayType`, :class:`FuncPtrType`).
"""

from . import ast
from .printer import print_expr, print_stmt, print_unit
from .types import (ArrayType, BOOL, BoolType, ClassRefType, EnumType,
                    FuncPtrType, INT, IntType, POINTER_SIZE, PointerType,
                    Type, VOID, VoidType, size_of)

__all__ = [
    "ast", "print_expr", "print_stmt", "print_unit",
    "ArrayType", "BOOL", "BoolType", "ClassRefType", "EnumType",
    "FuncPtrType", "INT", "IntType", "POINTER_SIZE", "PointerType",
    "Type", "VOID", "VoidType", "size_of",
]
