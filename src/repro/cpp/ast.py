"""Abstract syntax tree of the C++ subset.

The three code-generation patterns emit this AST; the MGCC frontend
consumes it.  It deliberately covers only what generated state-machine
code needs (the paper's generators emit a similarly constrained dialect):

* translation units with enums, extern "C" declarations, globals with
  static initializers (for transition tables and vtable-backed state
  singletons), free functions, and classes;
* classes with fields, (virtual) methods and single inheritance;
* statements: compound, expression, assignment, if/else, while, switch,
  break, return, local declarations;
* expressions: literals, variable/field access, ``this``, unary/binary
  operators, direct calls, method calls (static or virtual dispatch),
  calls through function-pointer table entries, array indexing,
  address-of.

Nodes are plain dataclasses; the printer renders them as compilable C++
for inspection and golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from .types import BOOL, INT, VOID, FuncPtrType, Type

__all__ = [
    # expressions
    "Expr", "IntLit", "BoolLit", "NullPtr", "EnumRef", "Var", "ThisExpr",
    "FieldAccess", "Unary", "Binary", "Call", "MethodCall", "IndirectCall",
    "Index", "AddrOf", "FuncRef", "Cast",
    # statements
    "Stmt", "ExprStmt", "Assign", "VarDecl", "If", "While", "Switch",
    "SwitchCase", "Break", "Return", "Block",
    # declarations
    "Param", "Field", "Method", "ClassDecl", "Function", "EnumDecl",
    "GlobalVar", "ExternFunction", "Initializer", "StructInit", "ArrayInit",
    "TranslationUnit",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class NullPtr(Expr):
    pass


@dataclass(frozen=True)
class EnumRef(Expr):
    """Reference to an enumerator, e.g. ``STATE_S1``."""

    enum_name: str
    enumerator: str


@dataclass(frozen=True)
class Var(Expr):
    """Local variable, parameter, or global, by name."""

    name: str


@dataclass(frozen=True)
class ThisExpr(Expr):
    pass


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``obj->field`` (obj is always a pointer in the subset)."""

    obj: Expr
    field_name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "!", "-"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Direct call of a free / extern function."""

    func: str
    args: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class MethodCall(Expr):
    """``obj->method(args)``; ``virtual_dispatch`` selects vtable dispatch
    (the State-Pattern hot path) vs. a direct, devirtualized call."""

    obj: Expr
    class_name: str
    method: str
    args: Tuple[Expr, ...] = ()
    virtual_dispatch: bool = False


@dataclass(frozen=True)
class IndirectCall(Expr):
    """Call through a function pointer value (table pattern)."""

    target: Expr
    args: Tuple[Expr, ...] = ()
    signature: Optional[FuncPtrType] = None


@dataclass(frozen=True)
class Index(Expr):
    array: Expr
    index: Expr


@dataclass(frozen=True)
class AddrOf(Expr):
    """``&global`` — address of a global object (state singletons)."""

    operand: Expr


@dataclass(frozen=True)
class FuncRef(Expr):
    """Reference to a function as a value (for table initializers)."""

    func: str


@dataclass(frozen=True)
class Cast(Expr):
    to: Type
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for statements."""


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)

    def add(self, stmt: Stmt) -> "Block":
        self.statements.append(stmt)
        return self


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Assign(Stmt):
    """``lhs = rhs;`` where lhs is a Var, FieldAccess or Index."""

    lhs: Expr
    rhs: Expr


@dataclass
class VarDecl(Stmt):
    name: str
    var_type: Type
    init: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block = field(default_factory=Block)


@dataclass
class SwitchCase:
    """One ``case`` arm; ``values`` lists the (possibly multiple) labels."""

    values: List[Expr]
    body: Block = field(default_factory=Block)
    falls_through: bool = False  # emit without trailing break


@dataclass
class Switch(Stmt):
    subject: Expr
    cases: List[SwitchCase] = field(default_factory=list)
    default: Optional[Block] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    param_type: Type


@dataclass
class Field:
    name: str
    field_type: Type
    init: Optional[Expr] = None  # constructor-time initializer


@dataclass
class Method:
    name: str
    params: List[Param] = field(default_factory=list)
    ret: Type = VOID
    body: Optional[Block] = None  # None => pure virtual
    is_virtual: bool = False
    is_override: bool = False
    is_static: bool = False


@dataclass
class ClassDecl:
    name: str
    base: Optional[str] = None
    fields: List[Field] = field(default_factory=list)
    methods: List[Method] = field(default_factory=list)

    def method(self, name: str) -> Method:
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(f"no method {name!r} in class {self.name!r}")


@dataclass
class Function:
    """Free function with a body."""

    name: str
    params: List[Param] = field(default_factory=list)
    ret: Type = VOID
    body: Block = field(default_factory=Block)


@dataclass
class ExternFunction:
    """``extern "C"`` declaration (opaque platform operation)."""

    name: str
    params: List[Param] = field(default_factory=list)
    ret: Type = INT


@dataclass
class EnumDecl:
    name: str
    enumerators: List[str] = field(default_factory=list)

    def value_of(self, enumerator: str) -> int:
        return self.enumerators.index(enumerator)


class Initializer:
    """Base class for static initializers of globals."""


@dataclass
class StructInit(Initializer):
    """Braced initializer: field values in declaration order."""

    values: List[Union[Expr, "Initializer"]] = field(default_factory=list)


@dataclass
class ArrayInit(Initializer):
    elements: List[Union[Expr, "Initializer"]] = field(default_factory=list)


@dataclass
class GlobalVar:
    """File-scope object with static storage (tables, state singletons)."""

    name: str
    var_type: Type
    init: Optional[Union[Expr, Initializer]] = None
    is_const: bool = False  # const => .rodata


@dataclass
class TranslationUnit:
    """One generated .cpp file."""

    name: str
    enums: List[EnumDecl] = field(default_factory=list)
    externs: List[ExternFunction] = field(default_factory=list)
    classes: List[ClassDecl] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)

    def enum(self, name: str) -> EnumDecl:
        for e in self.enums:
            if e.name == name:
                return e
        raise KeyError(f"no enum {name!r} in unit {self.name!r}")

    def cls(self, name: str) -> ClassDecl:
        for c in self.classes:
            if c.name == name:
                return c
        raise KeyError(f"no class {name!r} in unit {self.name!r}")

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r} in unit {self.name!r}")
