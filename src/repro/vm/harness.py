"""Event-queue harness: run a *compiled* state machine on the simulator.

:class:`CompiledMachineVM` closes the loop the GIMPLE-level
:class:`~repro.codegen.harness.GeneratedMachine` leaves open: instead of
interpreting the middle-end IR, it generates code for a machine, runs
the full backend (isel, regalloc, peephole, prologue), assembles the
result into bytes, and *executes those bytes* on the
:class:`~.machine.Machine` — feeding it the same ``Event`` sequences the
UML interpreter consumes and recording what happens as a
:class:`~repro.semantics.trace.Trace`.
:class:`CompiledProgram` carries the compile+assemble artifacts so many
scenario runs (conformance sweeps) pay for the compiler once and boot a
fresh simulator per scenario.

Trace reconstruction uses only the architectural state the simulator
exposes (no instrumentation in the generated code):

* external calls           -> ``CALL`` records (name, argument values);
* stores to the machine object's context-attribute words -> ``ASSIGN``;
* stores to the ``pending`` event slot -> ``EMIT`` (the echo store each
  ``dispatch`` entry performs is recognized and skipped);
* each harness dispatch    -> ``EVENT_DISPATCH``;
* stores to the ``state`` variable -> ``STATE_ENTER`` for the patterns
  that keep an integer state (the state-pattern keeps a vtable pointer
  instead; its entries are not reconstructed).

The observable subset (CALL/ASSIGN/EMIT) is exactly what
:func:`repro.semantics.trace.observable_equal` compares — the contract
conformance checking relies on.  One wrinkle: every pattern's ``init()``
begins by storing each context attribute's default value exactly once
(before any behavior runs), and the interpreter does *not* trace that
initialization — so the first store to each attribute word is
recognized as the constructor default and skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..codegen import CodeGenerator, generator_by_name
from ..codegen.common import event_index
from ..compiler.driver import OptLevel, compile_unit
from ..compiler.frontend.lower import _UnitContext, mangle
from ..compiler.target.description import TargetDescription
from ..obs.metrics import REGISTRY
from ..semantics.trace import Trace, TraceKind
from ..uml.statemachine import StateMachine
from .image import Image, assemble
from .machine import Machine

#: Process-wide VM execution totals (unlabeled: scrape and diff).
_VM_CYCLES = REGISTRY.counter("vm_cycles_total",
                              "simulator cycles spent dispatching events")
_VM_EVENTS = REGISTRY.counter("vm_events_total",
                              "events dispatched on compiled-machine VMs")

__all__ = ["CompiledProgram", "CompiledMachineVM", "VmMetrics",
           "run_vm_scenario"]

_NO_EVENT = -1


@dataclass(frozen=True)
class VmMetrics:
    """Deterministic dynamic cost of one execution."""

    instructions: int
    cycles: int
    events_dispatched: int
    peak_dispatch_cycles: int
    init_cycles: int
    text_bytes: int

    @property
    def cycles_per_event(self) -> float:
        """Average simulated cycles per dispatched event (init excluded)."""
        if self.events_dispatched == 0:
            return 0.0
        return (self.cycles - self.init_cycles) / self.events_dispatched

    def summary(self) -> str:
        return (f"{self.instructions} instrs, {self.cycles} cycles "
                f"({self.cycles_per_event:.1f}/event over "
                f"{self.events_dispatched} events, "
                f"peak dispatch {self.peak_dispatch_cycles})")


class CompiledProgram:
    """One machine, generated + compiled + assembled for one target.

    Everything scenario-independent lives here; :meth:`boot` starts a
    fresh simulated instance (memory reset to the image's initial
    state, ``init()`` executed, watchpoints armed).
    """

    def __init__(self, machine: StateMachine,
                 generator: Union[CodeGenerator, str],
                 level: OptLevel = OptLevel.OS,
                 target: Union[TargetDescription, str, None] = None,
                 unit_cache=None) -> None:
        if isinstance(generator, str):
            generator = generator_by_name(generator)
        self.model = machine
        self.generator = generator
        self.level = level
        self.unit = generator.generate(machine)
        self.cls_name = generator.class_name(machine)
        if unit_cache is not None:
            # Delta path: per-unit compile against a shared unit cache.
            # Byte-identical to compile_unit (tests/compiler/test_units
            # pins it), but chains of machine variants — fuzz mutant
            # chains above all — reuse every unit their edit missed.
            from ..compiler import compile_program_incremental
            from ..compiler.frontend.lower import lower_unit
            self.compile_result = compile_program_incremental(
                lower_unit(self.unit), level, target=target,
                unit_cache=unit_cache, extra_key=generator.name)
        else:
            self.compile_result = compile_unit(self.unit, level,
                                               target=target)
        self.image: Image = assemble(self.compile_result.module)
        self.layout = _UnitContext(self.unit).layout(self.cls_name)
        self.event_names = [e.name for e in machine.events.values()]
        enum_name = f"{self.cls_name}_State"
        self.state_enumerators: Optional[List[str]] = next(
            (list(e.enumerators) for e in self.unit.enums
             if e.name == enum_name), None)

    def boot(self, externals: Optional[Mapping[str, Callable]] = None,
             trace_states: bool = True) -> "CompiledMachineVM":
        """Start one fresh instance of the compiled machine."""
        return CompiledMachineVM(self, externals=externals,
                                 trace_states=trace_states)


class CompiledMachineVM:
    """One generated+compiled machine executing on the ISA simulator.

    Construct from a :class:`CompiledProgram` (cheap, shares the
    compile), or pass a model + pattern to compile on the spot.
    """

    def __init__(self, program: Union[CompiledProgram, StateMachine],
                 generator: Union[CodeGenerator, str, None] = None,
                 level: OptLevel = OptLevel.OS,
                 target: Union[TargetDescription, str, None] = None,
                 externals: Optional[Mapping[str, Callable]] = None,
                 trace_states: bool = True) -> None:
        if not isinstance(program, CompiledProgram):
            if generator is None:
                raise ValueError("pass a CompiledProgram or a generator")
            program = CompiledProgram(program, generator, level=level,
                                      target=target)
        self.program = program
        self.model = program.model
        self.cls_name = program.cls_name
        self.vm = Machine(program.image, externals=externals)
        self.trace = Trace()
        self._dispatch_cycles: List[int] = []
        self._expected_echo: Optional[int] = None
        self._default_stored: set = set()
        self.this = self.vm.address_of(f"g_{self.cls_name}")
        self.vm.call_log = _TracingCallLog(self.trace)
        self._arm_watchpoints(trace_states)

        self.vm.call_function(mangle(self.cls_name, "init"), (self.this,))
        self.init_cycles = self.vm.cycles

    # ------------------------------------------------------------------
    def _arm_watchpoints(self, trace_states: bool) -> None:
        layout = self.program.layout
        for name in self.model.context.attributes:
            self.vm.watch(self.this + layout.offset_of(name),
                          self._attr_hook(name))
        if "pending" in layout.field_offsets:
            self.vm.watch(self.this + layout.offset_of("pending"),
                          self._pending_hook)
        if trace_states and "state" in layout.field_offsets and \
                self.program.state_enumerators is not None:
            self.vm.watch(self.this + layout.offset_of("state"),
                          self._state_hook(self.program.state_enumerators))

    def _attr_hook(self, name: str) -> Callable[[int, int], None]:
        def hook(_addr: int, value: int) -> None:
            if name not in self._default_stored:
                # init()'s one-time default-value store; the interpreter
                # does not trace attribute initialization either.
                self._default_stored.add(name)
                return
            self.trace.append(TraceKind.ASSIGN, name, value)
        return hook

    def _pending_hook(self, _addr: int, value: int) -> None:
        if value == _NO_EVENT:
            return
        if self._expected_echo is not None and \
                value == self._expected_echo:
            # dispatch() begins by storing its own argument into the
            # pending slot; that store is the event we injected, not an
            # emission by the machine.
            self._expected_echo = None
            return
        names = self.program.event_names
        if 0 <= value < len(names):
            self.trace.append(TraceKind.EMIT, names[value])

    def _state_hook(self, enumerators: List[str]
                    ) -> Callable[[int, int], None]:
        def hook(_addr: int, value: int) -> None:
            if 0 <= value < len(enumerators):
                name = enumerators[value]
                if name.startswith("ST_") and name != "ST_FINAL":
                    self.trace.append(TraceKind.STATE_ENTER, name[3:])
        return hook

    # ------------------------------------------------------------------
    def dispatch(self, event: object) -> "CompiledMachineVM":
        """Inject one event (by name or Event object) and run it to
        completion on the simulator.

        An event outside the machine's alphabet is dispatched as an
        out-of-range index: the generated code has no enumerator for
        it, but its dispatch loop handles any integer (jump-table
        bounds checks, unmatched compare chains, table scans that find
        no row), so the simulator charges the *real* cost of receiving
        an event the machine ignores.  Observably it is discarded —
        what the reference semantics does with an event nothing can
        consume.  (This is how an optimized machine that dropped unused
        events is exercised on the *original* machine's scenarios,
        mirroring :func:`repro.optim.equivalence.check_equivalence`.)"""
        name = getattr(event, "name", None) or str(event)
        if name in self.program.event_names:
            index = event_index(self.model, name)
        else:
            index = len(self.program.event_names)   # matches no arm
            self.trace.append(TraceKind.EVENT_DROPPED, name,
                              "no-alphabet")
        self.trace.append(TraceKind.EVENT_DISPATCH, name)
        self._expected_echo = index
        before = self.vm.cycles
        self.vm.call_function(mangle(self.cls_name, "dispatch"),
                              (self.this, index))
        self._expected_echo = None
        spent = self.vm.cycles - before
        self._dispatch_cycles.append(spent)
        _VM_CYCLES.inc(spent)
        _VM_EVENTS.inc()
        return self

    def send_all(self, events: Sequence[object]) -> "CompiledMachineVM":
        for event in events:
            self.dispatch(event)
        return self

    def is_final(self) -> bool:
        return bool(self.vm.call_function(
            mangle(self.cls_name, "is_final"), (self.this,)))

    def read_attribute(self, name: str) -> int:
        return self.vm.load_word(
            self.this + self.program.layout.offset_of(name))

    @property
    def calls(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """External calls performed so far, in execution order."""
        return list(self.vm.call_log)

    @property
    def metrics(self) -> VmMetrics:
        return VmMetrics(
            instructions=self.vm.instructions,
            cycles=self.vm.cycles,
            events_dispatched=len(self._dispatch_cycles),
            peak_dispatch_cycles=max(self._dispatch_cycles, default=0),
            init_cycles=self.init_cycles,
            text_bytes=len(self.program.image.text))


class _TracingCallLog(list):
    """call_log that mirrors every external call into a Trace."""

    def __init__(self, trace: Trace) -> None:
        super().__init__()
        self._trace = trace

    def append(self, item: Tuple[str, Tuple[int, ...]]) -> None:
        name, args = item
        self._trace.append(TraceKind.CALL, name, args)
        super().append(item)


def run_vm_scenario(machine: StateMachine,
                    events: Sequence[object],
                    pattern: Union[CodeGenerator, str] = "nested-switch",
                    level: OptLevel = OptLevel.OS,
                    target: Union[TargetDescription, str, None] = None,
                    externals: Optional[Mapping[str, Callable]] = None,
                    ) -> CompiledMachineVM:
    """Compile *machine*, execute *events* on the simulator, return the
    harness (mirrors :func:`repro.semantics.runtime.run_scenario`).

    .. deprecated::
        Thin shim over the :mod:`repro.exec` protocol — new callers
        should use ``repro.exec.run_scenario(VMExecutor(pattern, level,
        target), machine, events)``.  Only a :class:`CodeGenerator`
        *instance* (outside the string-keyed executor config) still
        takes the direct path.
    """
    import warnings
    warnings.warn(
        "repro.vm.run_vm_scenario is deprecated; use "
        "repro.exec.run_scenario(VMExecutor(pattern, level, target), "
        "machine, events) instead", DeprecationWarning, stacklevel=2)
    if isinstance(pattern, str):
        from ..exec.adapters import VMExecutor
        instance = VMExecutor(pattern, level=level,
                              target=target).load(machine,
                                                  externals=externals)
        instance.start()
        for event in events:
            instance.dispatch(event)
        return instance.vm
    vm = CompiledMachineVM(machine, pattern, level=level, target=target,
                           externals=externals)
    vm.send_all(events)
    return vm
