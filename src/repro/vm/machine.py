"""The RT ISA simulator: executes a loaded :class:`~.image.Image`.

A small in-order machine model over the decoded instruction map:
physical registers (the target's register file plus ``sp``/``lr``), a
flat word-addressed memory initialized from the image's data segment, a
descending stack, and an argument/return bank modeling the ABI the
backend's ``argmv``/``retmv`` shuffles assume.  External functions are
Python callables, logged in call order exactly like the GIMPLE
interpreter's ``call_log`` — that shared observable is what conformance
checking compares.

Every retired instruction is charged cycles from a simple in-order cost
model (memory and wide-immediate forms 2, multiply 3, divide 8, control
transfers pay a redirect cycle).  The counts are deterministic — they
are *simulated* cycles, so dynamic metrics derived from them are
reproducible across hosts, unlike wall-clock timings.

Memory watchpoints (``watch(addr, fn)``) fire on word stores; the
conformance harness uses them to observe attribute assignments and
event emissions of the running machine object without instrumenting the
generated code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .encoding import EncodingError
from .image import HALT_ADDRESS, Image, STACK_BASE

__all__ = ["Machine", "VMError", "cycle_cost"]


class VMError(Exception):
    """Raised on runtime errors in simulated code."""


def _wrap(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


#: Per-mnemonic base cycle cost; anything absent costs 1.
_BASE_CYCLES = {
    "lw": 2, "sw": 2, "lwg": 2, "swg": 2, "push": 2, "pop": 2,
    "li32": 2, "la": 2,
    "mul": 3, "div": 8, "mod": 8,
    "call": 2, "callr": 2, "ret": 2,
    "jt": 3,
}
#: Extra cycle a taken branch pays for the pipeline redirect.
_TAKEN_PENALTY = 1

_CMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}


def cycle_cost(op: str, taken: bool = False) -> int:
    """Cycles one retired instruction costs under the in-order model."""
    return _BASE_CYCLES.get(op, 1) + (_TAKEN_PENALTY if taken else 0)


class Machine:
    """One simulator instance over one loaded image."""

    def __init__(self, image: Image,
                 externals: Optional[Mapping[str, Callable]] = None,
                 max_steps: int = 20_000_000) -> None:
        self.image = image
        self.externals = dict(externals or {})
        self.max_steps = max_steps
        self.regs: Dict[str, int] = {
            name: 0 for name in image.encoding.reg_names}
        self.regs["sp"] = STACK_BASE
        self.regs["lr"] = HALT_ADDRESS
        self.memory: Dict[int, int] = dict(image.initial_memory)
        self.call_log: List[Tuple[str, Tuple[int, ...]]] = []
        self.instructions = 0
        self.cycles = 0
        self._watches: Dict[int, Callable[[int, int], None]] = {}
        self._args: Dict[int, int] = {}
        self._args_written: set = set()
        self._ret = 0
        self._word = image.target.word_size

    # -- memory ------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def store_word(self, addr: int, value: int) -> None:
        value = _wrap(value)
        self.memory[addr] = value
        hook = self._watches.get(addr)
        if hook is not None:
            hook(addr, value)

    def watch(self, addr: int, hook: Callable[[int, int], None]) -> None:
        """Invoke ``hook(addr, value)`` on every word store to *addr*."""
        self._watches[addr] = hook

    def unwatch(self, addr: int) -> None:
        self._watches.pop(addr, None)

    def address_of(self, symbol: str) -> int:
        return self.image.address_of(symbol)

    def read_global(self, symbol: str, offset: int = 0) -> int:
        return self.load_word(self.address_of(symbol) + offset)

    # -- ABI ---------------------------------------------------------------
    def call_function(self, name: str, args: Tuple[int, ...] = ()) -> int:
        """Call an image function by name; returns its result."""
        entry = self.image.func_entry.get(name)
        if entry is None:
            raise VMError(f"image has no function {name!r}")
        self._args = {i: _wrap(a) for i, a in enumerate(args)}
        # The callee reads the values; the written-set tracks only the
        # *current* caller's argmv stores (cleared by every call), so a
        # synthetic top-level call starts it empty.
        self._args_written = set()
        self.regs["lr"] = HALT_ADDRESS
        self._run(entry)
        return self._ret

    def _external_args(self) -> Tuple[int, ...]:
        if not self._args_written:
            return ()
        count = max(self._args_written) + 1
        return tuple(self._args.get(i, 0) for i in range(count))

    def _call_external(self, name: str) -> None:
        args = self._external_args()
        self.call_log.append((name, args))
        fn = self.externals.get(name)
        result = fn(*args) if fn is not None else 0
        self._ret = _wrap(int(result)) if result is not None else 0

    # -- execution ---------------------------------------------------------
    def _run(self, pc: int) -> None:
        regs = self.regs
        while pc != HALT_ADDRESS:
            try:
                instr, size, _fn = self.image.at(pc)
            except EncodingError as exc:
                raise VMError(str(exc)) from None
            self.instructions += 1
            if self.instructions > self.max_steps:
                raise VMError(
                    f"instruction budget exceeded ({self.max_steps}); "
                    "runaway simulated program?")
            op = instr.op
            next_pc = pc + size
            taken = False

            if op in ("mv", "argmv", "retmv"):
                if op == "mv":
                    regs[instr.defs[0]] = regs[instr.uses[0]]
                elif op == "argmv":
                    if instr.defs:      # callee: read parameter slot
                        regs[instr.defs[0]] = self._args.get(instr.imm, 0)
                    else:               # caller: fill argument slot
                        self._args[instr.imm] = regs[instr.uses[0]]
                        self._args_written.add(instr.imm)
                else:                   # retmv
                    if instr.defs:
                        regs[instr.defs[0]] = self._ret
                    else:
                        self._ret = regs[instr.uses[0]]
            elif op in ("li", "li32"):
                regs[instr.defs[0]] = _wrap(instr.imm)
            elif op == "la":
                regs[instr.defs[0]] = \
                    self.address_of(instr.symbol) + (instr.imm or 0)
            elif op in ("add", "sub", "mul", "div", "mod"):
                a = regs[instr.uses[0]]
                b = regs[instr.uses[1]]
                regs[instr.defs[0]] = self._binop(op, a, b)
            elif op == "addi":
                regs[instr.defs[0]] = _wrap(regs[instr.uses[0]] + instr.imm)
            elif op == "neg":
                regs[instr.defs[0]] = _wrap(-regs[instr.uses[0]])
            elif op.startswith("set"):
                cmp = _CMP[op[3:5]]
                a = regs[instr.uses[0]]
                b = instr.imm if op.endswith("i") else regs[instr.uses[1]]
                regs[instr.defs[0]] = int(cmp(a, b))
            elif op == "lw":
                regs[instr.defs[0]] = \
                    self.load_word(regs[instr.uses[0]] + (instr.imm or 0))
            elif op == "sw":
                self.store_word(regs[instr.uses[1]] + (instr.imm or 0),
                                regs[instr.uses[0]])
            elif op == "lwg":
                regs[instr.defs[0]] = \
                    self.read_global(instr.symbol, instr.imm or 0)
            elif op == "swg":
                self.store_word(
                    self.address_of(instr.symbol) + (instr.imm or 0),
                    regs[instr.uses[0]])
            elif op == "b":
                next_pc = self._label(instr.target)
                taken = True
            elif op in ("bnez", "beqz"):
                cond = regs[instr.uses[0]]
                if (cond != 0) == (op == "bnez"):
                    next_pc = self._label(instr.target)
                    taken = True
            elif op.startswith("b") and op[1:3] in _CMP:
                cmp = _CMP[op[1:3]]
                a = regs[instr.uses[0]]
                b = instr.imm if op.endswith("i") else regs[instr.uses[1]]
                if cmp(a, b):
                    next_pc = self._label(instr.target)
                    taken = True
            elif op == "jt":
                index = regs[instr.uses[0]] - instr.imm
                if 0 <= index < len(instr.table):
                    # The dispatch genuinely reads the rodata table the
                    # compiler emitted, entry width and all.
                    base = self.address_of(instr.symbol)
                    width = self.image.data_word_size.get(instr.symbol, 4)
                    next_pc = self.load_word(base + width * index)
                    taken = True
                # else: fall through to the out-of-range branch
            elif op == "call":
                if instr.symbol in self.image.func_entry:
                    regs["lr"] = next_pc
                    next_pc = self.image.func_entry[instr.symbol]
                    taken = True
                else:
                    self._call_external(instr.symbol)
                self._args_written = set()
            elif op == "callr":
                target = regs[instr.uses[0]]
                callee = self.image.entry_func.get(target)
                if callee is None:
                    raise VMError(
                        f"indirect call to non-entry address {target:#x}")
                regs["lr"] = next_pc
                next_pc = self.image.func_entry[callee]
                taken = True
                self._args_written = set()
            elif op == "ret":
                next_pc = regs["lr"]
                taken = True
            elif op == "push":
                regs["sp"] -= self._word
                self.store_word(regs["sp"], regs[instr.uses[0]])
            elif op == "pop":
                regs[instr.defs[0]] = self.load_word(regs["sp"])
                regs["sp"] += self._word
            elif op == "addsp":
                regs["sp"] += instr.imm
            else:  # pragma: no cover - defensive
                raise VMError(f"unimplemented mnemonic {op!r}")

            self.cycles += cycle_cost(op, taken)
            pc = next_pc

    def _label(self, label: str) -> int:
        addr = self.image.label_addr.get(label)
        if addr is None:
            raise VMError(f"branch to unknown label {label!r}")
        return addr

    @staticmethod
    def _binop(op: str, a: int, b: int) -> int:
        if op == "add":
            return _wrap(a + b)
        if op == "sub":
            return _wrap(a - b)
        if op == "mul":
            return _wrap(a * b)
        if b == 0:
            raise VMError("division by zero")
        quotient = int(a / b)   # C semantics: truncate toward zero
        return _wrap(quotient) if op == "div" else _wrap(a - quotient * b)
