"""Instruction codec: RTL <-> bytes, driven by a TargetDescription.

The assembler and the simulator must agree on what every byte means, and
both must agree with the size accounting the experiments report.  This
module derives everything from the target's
:class:`~repro.compiler.target.description.TargetDescription` — no
parallel opcode table exists to drift out of sync:

* **opcode numbers** are the mnemonic's index in the sorted key list of
  ``insn_sizes`` (``label`` is a pseudo-op and is never encoded);
* **instruction length** is exactly ``insn_sizes[op]`` bytes, so the
  encoded text of a function occupies precisely
  :attr:`RTLFunction.text_size` bytes and every label gets a real
  address;
* **register numbers** are positions in ``allocatable_regs`` +
  ``scratch_regs`` + ``(sp, lr)``.

Operand encoding follows the literal-pool/constant-pool tradition of
compact ISAs and bytecode VMs (Thumb literal pools, Python's
``co_consts``): byte 0 of every instruction is the opcode, and the
remaining payload bytes hold a little-endian index into a per-function,
per-mnemonic **operand pool** interning the instruction's canonical
operand tuple (registers, immediate, symbol, branch target, jump
table).  This keeps the stream byte-exact per the target's declared
encodings — the property the paper's size numbers rest on — without
pretending a 16-bit slot can hold a three-operand add with an 8-bit
immediate at bit level.  The payload width bounds the pool: a 2-byte
rt16 instruction can name 256 distinct operand tuples of its mnemonic
per function, far beyond what any generated machine reaches; exceeding
it raises :class:`EncodingError` rather than silently widening.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..compiler.rtl.ir import RInstr
from ..compiler.target.description import TargetDescription

__all__ = ["EncodingError", "OperandPool", "TargetEncoding",
           "operand_key"]


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded for a target."""


#: Canonical operand tuple of an instruction (everything but the
#: mnemonic and the comment; comments are listing sugar, not semantics).
OperandKey = Tuple[Tuple[str, ...], Tuple[str, ...], Optional[int],
                   Optional[str], Optional[str],
                   Optional[Tuple[str, ...]]]


def operand_key(instr: RInstr) -> OperandKey:
    """The semantic payload of *instr* (drops the comment)."""
    return (tuple(instr.defs), tuple(instr.uses), instr.imm,
            instr.symbol, instr.target,
            tuple(instr.table) if instr.table is not None else None)


class OperandPool:
    """Per-function operand pool: one interning table per mnemonic."""

    def __init__(self) -> None:
        self._entries: Dict[str, List[OperandKey]] = {}
        self._index: Dict[Tuple[str, OperandKey], int] = {}

    def intern(self, op: str, key: OperandKey, max_entries: int,
               context: str = "") -> int:
        """Index of *key* in the mnemonic's table, adding it if new."""
        probe = self._index.get((op, key))
        if probe is not None:
            return probe
        table = self._entries.setdefault(op, [])
        if len(table) >= max_entries:
            raise EncodingError(
                f"{context}: operand pool overflow for {op!r} "
                f"({max_entries} entries fit the payload width)")
        index = len(table)
        table.append(key)
        self._index[(op, key)] = index
        return index

    def lookup(self, op: str, index: int) -> OperandKey:
        try:
            return self._entries[op][index]
        except (KeyError, IndexError):
            raise EncodingError(
                f"no pool entry {index} for mnemonic {op!r}") from None

    def entries(self, op: str) -> List[OperandKey]:
        return list(self._entries.get(op, []))


class TargetEncoding:
    """The byte-level view of one target's ISA."""

    def __init__(self, target: TargetDescription) -> None:
        self.target = target
        self.mnemonics: Tuple[str, ...] = tuple(
            op for op in sorted(target.insn_sizes) if op != "label")
        if len(self.mnemonics) > 256:
            raise EncodingError(
                f"{target.name}: {len(self.mnemonics)} mnemonics exceed "
                "the one-byte opcode space")
        self.opcode_of: Dict[str, int] = {
            op: i for i, op in enumerate(self.mnemonics)}
        self.reg_names: Tuple[str, ...] = (
            tuple(target.allocatable_regs) + tuple(target.scratch_regs)
            + ("sp", "lr"))
        self.reg_num: Dict[str, int] = {
            name: i for i, name in enumerate(self.reg_names)}

    # -- sizing ------------------------------------------------------------
    def size_of(self, op: str) -> int:
        try:
            size = self.target.insn_sizes[op]
        except KeyError:
            raise EncodingError(
                f"{self.target.name} does not encode {op!r}") from None
        if op != "label" and size < 2:
            raise EncodingError(
                f"{self.target.name}: {op!r} is {size} byte(s); the codec "
                "needs an opcode byte plus at least one payload byte")
        return size

    def pool_capacity(self, op: str) -> int:
        """Distinct operand tuples the payload width can index."""
        return 1 << (8 * (self.size_of(op) - 1))

    # -- encode ------------------------------------------------------------
    def encode(self, instr: RInstr, pool: OperandPool,
               context: str = "") -> bytes:
        """Encode one instruction; interns its operands into *pool*."""
        if instr.op == "label":
            return b""
        opcode = self.opcode_of.get(instr.op)
        if opcode is None:
            raise EncodingError(
                f"{context}: {self.target.name} does not encode "
                f"{instr.op!r}")
        for reg in tuple(instr.defs) + tuple(instr.uses):
            if reg not in self.reg_num:
                raise EncodingError(
                    f"{context}: register {reg!r} is not in the "
                    f"{self.target.name} register file (virtual register "
                    "reached the assembler?)")
        size = self.size_of(instr.op)
        index = pool.intern(instr.op, operand_key(instr),
                            self.pool_capacity(instr.op), context)
        return bytes([opcode]) + index.to_bytes(size - 1, "little")

    # -- decode ------------------------------------------------------------
    def decode(self, data: bytes, offset: int,
               pool: OperandPool) -> Tuple[RInstr, int]:
        """Decode the instruction at *offset*; returns (instr, size)."""
        try:
            opcode = data[offset]
        except IndexError:
            raise EncodingError(f"decode past end of text at +{offset}") \
                from None
        try:
            op = self.mnemonics[opcode]
        except IndexError:
            raise EncodingError(f"unknown opcode {opcode} at +{offset}") \
                from None
        size = self.size_of(op)
        payload = data[offset + 1:offset + size]
        if len(payload) != size - 1:
            raise EncodingError(
                f"truncated {op!r} at +{offset}: {len(payload)} payload "
                f"byte(s), expected {size - 1}")
        index = int.from_bytes(payload, "little")
        defs, uses, imm, symbol, target, table = pool.lookup(op, index)
        return (RInstr(op, defs=defs, uses=uses, imm=imm, symbol=symbol,
                       target=target, table=table), size)
