"""Differential conformance: compiled code vs. the reference semantics.

The paper's refactoring argument needs the generated, compiled code to
*behave* like the model, not merely be smaller.  This module checks that
end to end: for each event scenario it runs the UML interpreter
(:func:`repro.semantics.runtime.run_scenario`) and the compiled machine
on the ISA simulator (:mod:`repro.vm.harness`), and compares the
**observable traces** — external calls with argument values, context
attribute assignments, events emitted to self — plus final-state
agreement.  A machine passes when every scenario matches for the chosen
codegen pattern x optimization level x target.

The generated runtimes implement the semantics the paper fixes before
generating code (UML defaults: FIFO-equivalent single-slot pool,
discard unconsumed, innermost-first, completion priority), so
conformance is asserted under :data:`UML_DEFAULT_SEMANTICS`; passing a
different config checks how far the fixed-code semantics diverge from
that variation instead.

Because the simulator also counts cycles, a conformance run doubles as
the dynamic measurement: the report aggregates instructions, cycles per
dispatched event and peak dispatch latency over all scenarios — all
deterministic, simulated quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..compiler.driver import OptLevel
from ..compiler.target.description import TargetDescription
from ..compiler.target.registry import resolve_target
from ..semantics.runtime import ExecutionError
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .encoding import EncodingError
from .machine import VMError

__all__ = ["ConformanceReport", "check_vm_conformance",
           "conformance_scenarios"]


@dataclass
class ConformanceReport:
    """Interpreter-vs-simulator comparison over a scenario set."""

    machine_name: str
    pattern: str
    level: OptLevel
    target_name: str
    scenarios_run: int = 0
    mismatches: List[Tuple[Tuple[str, ...], str]] = field(
        default_factory=list)
    # aggregate dynamic cost over all scenarios (simulated, deterministic)
    instructions: int = 0
    cycles: int = 0
    events_dispatched: int = 0
    peak_dispatch_cycles: int = 0
    init_cycles: int = 0
    text_bytes: int = 0

    @property
    def conformant(self) -> bool:
        return not self.mismatches

    @property
    def metrics(self) -> "VmMetrics":
        """The aggregate dynamic cost as one :class:`VmMetrics` (sums
        over all scenarios; peak is the worst single dispatch)."""
        from .harness import VmMetrics
        return VmMetrics(instructions=self.instructions,
                         cycles=self.cycles,
                         events_dispatched=self.events_dispatched,
                         peak_dispatch_cycles=self.peak_dispatch_cycles,
                         init_cycles=self.init_cycles,
                         text_bytes=self.text_bytes)

    @property
    def cycles_per_event(self) -> float:
        """Mean simulated cycles per dispatched event (init excluded)."""
        return self.metrics.cycles_per_event

    def summary(self) -> str:
        head = (f"{self.machine_name} [{self.pattern}, {self.level.value}, "
                f"{self.target_name}]")
        if self.conformant:
            return (f"{head}: conformant on {self.scenarios_run} "
                    f"scenario(s); {self.cycles_per_event:.1f} "
                    f"cycles/event, peak dispatch "
                    f"{self.peak_dispatch_cycles}")
        first = self.mismatches[0]
        return (f"{head}: {len(self.mismatches)} of {self.scenarios_run} "
                f"scenario(s) diverge; first: events={list(first[0])} "
                f"({first[1]})")


def conformance_scenarios(machine: StateMachine,
                          exhaustive_depth: int = 2,
                          n_random: int = 8,
                          random_length: int = 10,
                          seed: int = 0xFACE) -> List[Tuple[str, ...]]:
    """Scenario set for conformance runs.

    Same construction as :func:`repro.optim.equivalence.make_scenarios`
    but with smaller defaults: every scenario here costs a full
    instruction-level simulation, not just two interpreter runs.
    """
    from ..optim.equivalence import make_scenarios
    return make_scenarios(machine, exhaustive_depth=exhaustive_depth,
                          n_random=n_random, random_length=random_length,
                          seed=seed)


def check_vm_conformance(machine: StateMachine,
                         pattern: str = "nested-switch",
                         level: OptLevel = OptLevel.OS,
                         target: Union[TargetDescription, str, None] = None,
                         semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                         scenarios: Optional[Sequence[Tuple[str, ...]]]
                         = None,
                         ) -> ConformanceReport:
    """Execute compiled code against the interpreter on every scenario.

    Both backends run through the :mod:`repro.exec` protocol: the
    reference via :class:`~repro.exec.InterpreterExecutor`, the
    compiled code via :class:`~repro.exec.VMExecutor` (which memoizes
    the compile, so the sweep still assembles one image and boots a
    fresh simulator per scenario).
    """
    from ..exec.adapters import InterpreterExecutor, VMExecutor
    from ..exec.protocol import run_scenario
    tgt = resolve_target(target)
    report = ConformanceReport(machine_name=machine.name, pattern=pattern,
                               level=level, target_name=tgt.name)
    if scenarios is None:
        scenarios = conformance_scenarios(machine)
    interp = InterpreterExecutor(semantics)
    executor = VMExecutor(pattern, level=level, target=tgt)
    try:
        program = executor.program_for(machine)
    except Exception as exc:   # codegen/compile/assemble failure
        report.mismatches.append(((), f"compile/assemble failed: {exc}"))
        return report
    report.text_bytes = len(program.image.text)

    for events in scenarios:
        report.scenarios_run += 1
        try:
            ref = run_scenario(interp, machine, events)
        except ExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"interpreter raised: {exc}"))
            continue
        try:
            instance = run_scenario(executor, machine, events)
        except (VMError, EncodingError) as exc:
            report.mismatches.append((tuple(events),
                                      f"simulator raised: {exc}"))
            continue
        metrics = instance.metrics
        report.instructions += metrics.instructions
        report.cycles += metrics.cycles
        report.init_cycles += metrics.init_cycles
        report.events_dispatched += metrics.events_dispatched
        report.peak_dispatch_cycles = max(report.peak_dispatch_cycles,
                                          metrics.peak_dispatch_cycles)
        if ref.trace.observable_payloads() != \
                instance.trace.observable_payloads():
            report.mismatches.append((tuple(events),
                                      "observable trace mismatch"))
        elif ref.in_final != instance.in_final:
            report.mismatches.append((tuple(events),
                                      "final-state mismatch"))
    return report
