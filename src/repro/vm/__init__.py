"""RT ISA simulator: execute what the compiler emits.

The compile side of the reproduction measures generated-code *size*;
this package executes the generated code so its *behavior* and *dynamic
cost* can be measured too.  Main public names:

* :class:`~.encoding.TargetEncoding` / :class:`~.encoding.OperandPool` —
  the byte codec, derived entirely from a
  :class:`~repro.compiler.target.TargetDescription` (opcode numbers,
  register numbers, per-mnemonic byte sizes);
* :func:`~.image.assemble` / :class:`~.image.Image` — assembler+linker:
  ``AsmModule`` to an executable memory image whose text is byte-exact
  per the target's size accounting;
* :class:`~.machine.Machine` — the cycle-counting in-order simulator
  (registers, flat memory, stack, ABI argument bank, watchpoints);
* :class:`~.harness.CompiledProgram` /
  :class:`~.harness.CompiledMachineVM` / :func:`~.harness.run_vm_scenario`
  — the event-queue harness feeding a compiled machine the same
  ``Event`` sequences the UML interpreter consumes, reconstructing a
  :class:`~repro.semantics.trace.Trace` and :class:`~.harness.VmMetrics`;
* :func:`~.conformance.check_vm_conformance` /
  :class:`~.conformance.ConformanceReport` — differential checking of
  interpreter trace vs. executed-code trace per pattern x level x
  target.
"""

from .conformance import (ConformanceReport, check_vm_conformance,
                          conformance_scenarios)
from .encoding import EncodingError, OperandPool, TargetEncoding
from .harness import (CompiledMachineVM, CompiledProgram, VmMetrics,
                      run_vm_scenario)
from .image import (DATA_BASE, HALT_ADDRESS, STACK_BASE, TEXT_BASE, Image,
                    assemble)
from .machine import Machine, VMError, cycle_cost

__all__ = [
    "ConformanceReport", "check_vm_conformance", "conformance_scenarios",
    "EncodingError", "OperandPool", "TargetEncoding",
    "CompiledMachineVM", "CompiledProgram", "VmMetrics", "run_vm_scenario",
    "Image", "assemble", "TEXT_BASE", "DATA_BASE", "STACK_BASE",
    "HALT_ADDRESS",
    "Machine", "VMError", "cycle_cost",
]
