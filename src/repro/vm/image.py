"""Assembling and loading: AsmModule -> executable memory image.

``assemble`` is the reproduction's assembler+linker: it lays the
module's functions out in one text segment (every instruction at the
byte address the target's ``insn_sizes`` dictate, labels at size-0
addresses), encodes each instruction through the target's
:class:`~.encoding.TargetEncoding`, places the data objects in a data
segment, and resolves every symbol — function entries, globals, and the
``fn:block`` references jump tables carry — to a concrete address.

The :class:`Image` then *decodes its own bytes back* into the
instruction map the simulator executes: what runs is what was encoded,
so the encoder and decoder cannot drift apart without execution
noticing.  ``len(image.text) == module.text_size`` by construction —
the byte count the experiments report is the byte count the simulator
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..compiler.asm import AsmModule
from ..compiler.gimple.ir import SymbolRef
from ..compiler.rtl.ir import RInstr
from ..compiler.target.description import TargetDescription
from ..compiler.target.registry import resolve_target
from ..obs.trace import span as _span
from .encoding import EncodingError, OperandPool, TargetEncoding

__all__ = ["Image", "assemble", "TEXT_BASE", "DATA_BASE", "STACK_BASE",
           "HALT_ADDRESS"]

#: Segment bases.  Text sits low (function entry addresses double as
#: call targets), data high, the stack at the top growing down.
TEXT_BASE = 0x0000_1000
DATA_BASE = 0x1000_0000
STACK_BASE = 0x3000_0000
#: Return address of the outermost frame; ``ret`` to it halts the run.
HALT_ADDRESS = 0x0


@dataclass
class Image:
    """One loaded module: encoded text + placed data + symbol tables."""

    module: AsmModule
    target: TargetDescription
    encoding: TargetEncoding
    text: bytes = b""
    func_entry: Dict[str, int] = field(default_factory=dict)
    entry_func: Dict[int, str] = field(default_factory=dict)
    label_addr: Dict[str, int] = field(default_factory=dict)
    data_addr: Dict[str, int] = field(default_factory=dict)
    data_word_size: Dict[str, int] = field(default_factory=dict)
    initial_memory: Dict[int, int] = field(default_factory=dict)
    pools: Dict[str, OperandPool] = field(default_factory=dict)
    #: pc -> (decoded instruction, encoded size, owning function)
    instructions: Dict[int, Tuple[RInstr, int, str]] = \
        field(default_factory=dict)

    # -- symbols -----------------------------------------------------------
    def address_of(self, symbol: str) -> int:
        """Address of a data object, function, or ``fn:block`` label."""
        if symbol in self.data_addr:
            return self.data_addr[symbol]
        if symbol in self.func_entry:
            return self.func_entry[symbol]
        if ":" in symbol and not symbol.startswith("."):
            fn_name, _, block = symbol.rpartition(":")
            qualified = f".{fn_name}.{block}"
            if qualified in self.label_addr:
                return self.label_addr[qualified]
        if symbol in self.label_addr:
            return self.label_addr[symbol]
        raise EncodingError(f"unresolved symbol {symbol!r}")

    def at(self, pc: int) -> Tuple[RInstr, int, str]:
        """Decoded instruction at *pc* (instr, size, function name)."""
        try:
            return self.instructions[pc]
        except KeyError:
            raise EncodingError(
                f"no instruction at {pc:#x} (fell off the text "
                "segment?)") from None


def assemble(module: AsmModule, target=None) -> Image:
    """Assemble *module* into an executable :class:`Image`.

    *target* (a description, a registered name, or None) defaults to
    the module's own target (which every driver compile sets); passing
    a *different* one is an error waiting to happen and therefore
    rejected.
    """
    sp = _span("stage.assemble")
    if sp.recording:
        sp.set(module=module.name)
    with sp:
        return _assemble(module, target)


def _assemble(module: AsmModule, target=None) -> Image:
    tgt = module.target if module.target is not None \
        else resolve_target(target)
    if target is not None and resolve_target(target).name != tgt.name:
        raise EncodingError(
            f"module {module.name!r} was compiled for {tgt.name}; "
            f"refusing to assemble it as {resolve_target(target).name}")
    encoding = TargetEncoding(tgt)
    image = Image(module=module, target=tgt, encoding=encoding)

    # Pass 1: layout — assign every instruction and label its address.
    addr = TEXT_BASE
    placed: List[Tuple[str, int, RInstr]] = []   # (fn, addr, instr)
    for fn in module.functions:
        image.func_entry[fn.name] = addr
        image.entry_func[addr] = fn.name
        for instr in fn.instrs:
            if instr.op == "label":
                image.label_addr[instr.target] = addr
                continue
            placed.append((fn.name, addr, instr))
            addr += encoding.size_of(instr.op)

    # Pass 2: encode.  The pool is per function, like a literal pool.
    chunks: List[bytes] = []
    for fn_name, at, instr in placed:
        pool = image.pools.setdefault(fn_name, OperandPool())
        chunk = encoding.encode(instr, pool,
                                context=f"{fn_name}+{at - TEXT_BASE:#x}")
        chunks.append(chunk)
    image.text = b"".join(chunks)
    if len(image.text) != module.text_size:
        raise EncodingError(
            f"assembler laid out {len(image.text)} text bytes but the "
            f"module accounts {module.text_size} — size model broken")

    # Pass 3: place data (one guard word between objects, as the GIMPLE
    # interpreter does) and resolve initializer symbols.
    daddr = DATA_BASE
    for obj in module.data_objects:
        image.data_addr[obj.name] = daddr
        image.data_word_size[obj.name] = obj.word_size
        daddr += max(obj.size, 4) + 4
    for obj in module.data_objects:
        base = image.data_addr[obj.name]
        for i, word in enumerate(obj.words):
            value = image.address_of(word.symbol) \
                if isinstance(word, SymbolRef) else int(word)
            image.initial_memory[base + obj.word_size * i] = value

    # Pass 4: decode the bytes back into the executable instruction map.
    # Execution consumes only this decoded view, so any encoder/decoder
    # disagreement is caught here, not in a conformance mismatch later.
    for fn_name, at, original in placed:
        offset = at - TEXT_BASE
        decoded, size = encoding.decode(image.text, offset,
                                        image.pools[fn_name])
        if size != encoding.size_of(original.op) or \
                decoded.op != original.op:
            raise EncodingError(
                f"{fn_name}+{offset:#x}: decoded {decoded.op!r}/{size}B, "
                f"encoded {original.op!r}")
        image.instructions[at] = (decoded, size, fn_name)
    return image
