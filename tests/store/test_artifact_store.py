"""ArtifactStore: persistence, recovery, eviction, atomicity."""

import os

import pytest

from repro.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestBasics:
    def test_put_get_roundtrip(self, store):
        store.put("k", {"v": [1, 2, 3]})
        assert store.load("k") == {"v": [1, 2, 3]}
        assert "k" in store and len(store) == 1

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyError):
            store.load("absent")
        assert store.get("absent", "fallback") == "fallback"

    def test_overwrite_last_writer_wins(self, store):
        store.put("k", "old")
        store.put("k", "new")
        assert store.load("k") == "new"
        assert len(store) == 1

    def test_persists_across_handles(self, store):
        store.put("k", 42)
        reopened = ArtifactStore(store.root)
        assert reopened.load("k") == 42

    def test_keys_and_total_bytes(self, store):
        for i in range(5):
            store.put(f"key-{i}", i)
        assert store.keys() == [f"key-{i}" for i in range(5)]
        assert store.total_bytes() > 0

    def test_sharded_layout(self, store):
        """Entries live two levels deep: objects/<2 hex>/<62 hex>."""
        store.put("k", 1)
        path = store.path_for("k")
        assert path.exists()
        assert path.parent.parent.name == "objects"
        assert len(path.parent.name) == 2 and len(path.name) == 62

    def test_hostile_keys_stay_inside_objects(self, store):
        key = "../../../etc/passwd\x00weird key"
        store.put(key, "safe")
        assert store.load(key) == "safe"
        assert store.path_for(key).resolve().is_relative_to(
            store.root.resolve())

    def test_clear(self, store):
        store.put("a", 1)
        store.put("b", 2)
        store.clear()
        assert len(store) == 0
        assert store.get("a") is None


class TestRecovery:
    def test_corrupted_entry_is_dropped_and_missed(self, store):
        store.put("k", list(range(100)))
        path = store.path_for("k")
        data = path.read_bytes()
        path.write_bytes(data[:-5] + b"XXXXX")
        with pytest.raises(KeyError):
            store.load("k")
        assert not path.exists(), "corrupt entry must be deleted"
        assert store.stats.corrupt_dropped == 1
        # the key is reusable afterwards
        store.put("k", "fresh")
        assert store.load("k") == "fresh"

    def test_truncated_entry_recovered(self, store):
        store.put("k", list(range(100)))
        path = store.path_for("k")
        path.write_bytes(path.read_bytes()[:20])
        assert store.get("k") is None
        assert not path.exists()

    def test_foreign_file_recovered(self, store):
        store.put("k", 1)
        path = store.path_for("k")
        path.write_bytes(b"not an entry at all")
        assert store.get("k") is None
        assert not path.exists()

    def test_fsck_drops_only_the_bad(self, store):
        for i in range(4):
            store.put(f"k{i}", i)
        bad = store.path_for("k2")
        bad.write_bytes(bad.read_bytes()[:-1])
        report = store.fsck()
        assert report.checked == 3 and report.dropped == 1
        assert not report.clean
        assert store.get("k2") is None
        assert store.load("k1") == 1
        assert store.fsck().clean


class TestEviction:
    def _sized_store(self, tmp_path, n=8):
        store = ArtifactStore(tmp_path / "gc-store")
        for i in range(n):
            store.put(f"k{i}", list(range(50)))
        return store

    def test_gc_respects_budget(self, tmp_path):
        store = self._sized_store(tmp_path)
        before = store.total_bytes()
        report = store.gc(max_bytes=before // 2)
        assert store.total_bytes() <= before // 2
        assert report.dropped > 0 and report.bytes_after <= before // 2
        assert store.stats.evicted == report.dropped

    def test_gc_is_lru(self, tmp_path):
        store = self._sized_store(tmp_path)
        # Touch k0/k1 (a verified read refreshes the LRU position).
        old = [store.path_for(f"k{i}") for i in range(2, 8)]
        for path in old:
            os.utime(path, (1, 1))          # force "long ago"
        store.load("k0")
        store.load("k1")
        entry_bytes = store.total_bytes() // 8
        store.gc(max_bytes=2 * entry_bytes)
        assert "k0" in store and "k1" in store
        assert all(store.get(f"k{i}") is None for i in range(2, 8))

    def test_gc_to_zero_empties(self, tmp_path):
        store = self._sized_store(tmp_path)
        store.gc(max_bytes=0)
        assert len(store) == 0

    def test_unbounded_gc_is_a_noop(self, tmp_path):
        store = self._sized_store(tmp_path)
        report = store.gc()                  # no budget configured
        assert report.dropped == 0 and len(store) == 8

    def test_put_triggers_auto_gc(self, tmp_path):
        store = ArtifactStore(tmp_path / "auto", max_bytes=600)
        for i in range(20):
            store.put(f"k{i}", list(range(50)))
        assert store.total_bytes() <= 600
        assert len(store) < 20


class TestAtomicity:
    def test_no_partial_files_after_put(self, store):
        store.put("k", list(range(1000)))
        tmp_dir = store.root / "tmp"
        assert list(tmp_dir.iterdir()) == [], "temp files must not leak"

    def test_failed_write_leaves_store_consistent(self, store, monkeypatch):
        store.put("k", "original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            store.put("k", "replacement")
        monkeypatch.undo()
        assert store.load("k") == "original"
        assert list((store.root / "tmp").iterdir()) == []


class TestReviewRegressions:
    def test_fsck_keeps_long_key_entries(self, store):
        """Keys are arbitrary strings: a header line longer than any
        fixed read cap must still verify, enumerate and fsck clean."""
        long_key = "k" * 100_000
        store.put(long_key, "value")
        assert store.load(long_key) == "value"
        assert long_key in store.keys()
        report = store.fsck()
        assert report.clean and report.checked == 1
        assert store.load(long_key) == "value"

    def test_overwrites_do_not_inflate_the_byte_estimate(self, tmp_path):
        """Rewriting one key must not creep the running size estimate
        past the budget (which would cost a full-store gc per put)."""
        store = ArtifactStore(tmp_path / "rewrite", max_bytes=100_000)
        for _ in range(300):
            store.put("same-key", list(range(100)))
        assert len(store) == 1
        assert store.stats.evicted == 0
        assert store._approx_bytes == store.total_bytes()
