"""Entry codec: round-trip, integrity verification, schema stamping."""

import pickle

import pytest

from repro.schema import schema_stamp
from repro.store import (ENTRY_MAGIC, CorruptEntryError, EntryError,
                         SchemaMismatchError, decode_entry, encode_entry)


class TestRoundTrip:
    def test_value_survives(self):
        value = {"sizes": [1, 2, 3], "name": "m", "nested": {"a": (1, 2)}}
        assert decode_entry("key", encode_entry("key", value)) == value

    def test_header_is_first_line(self):
        data = encode_entry("key", 42)
        assert data.startswith(ENTRY_MAGIC + b" ")
        header = data.split(b"\n", 1)[0]
        assert b'"key"' in header and b'"sha256"' in header

    def test_pickle_protocol_is_current(self):
        payload = encode_entry("key", 42).split(b"\n", 1)[1]
        assert pickle.loads(payload) == 42


class TestVerification:
    def test_payload_corruption_detected(self):
        data = bytearray(encode_entry("key", list(range(50))))
        data[-1] ^= 0xFF
        with pytest.raises(CorruptEntryError, match="digest"):
            decode_entry("key", bytes(data))

    def test_truncation_detected(self):
        data = encode_entry("key", list(range(50)))
        with pytest.raises(CorruptEntryError, match="truncated"):
            decode_entry("key", data[:-4])

    def test_wrong_key_detected(self):
        data = encode_entry("key-a", 1)
        with pytest.raises(CorruptEntryError, match="key"):
            decode_entry("key-b", data)

    def test_bad_magic_detected(self):
        data = b"other-format " + encode_entry("key", 1).split(b" ", 1)[1]
        with pytest.raises(SchemaMismatchError):
            decode_entry("key", data)

    def test_garbage_detected(self):
        with pytest.raises(EntryError):
            decode_entry("key", b"\x00\x01\x02 nonsense")

    def test_missing_separator_detected(self):
        with pytest.raises(CorruptEntryError):
            decode_entry("key", ENTRY_MAGIC + b" {} no newline here")


class TestSchemaStamp:
    def test_current_stamp_accepted(self):
        data = encode_entry("key", "value")
        assert decode_entry("key", data,
                            expected_schema=schema_stamp()) == "value"

    def test_other_generation_rejected(self):
        """An entry written by a different serialization generation must
        be a miss, never deserialized."""
        data = encode_entry("key", "value")
        with pytest.raises(SchemaMismatchError):
            decode_entry("key", data,
                         expected_schema="repro.schema/999+uml.format/1")

    def test_stamp_names_both_version_axes(self):
        stamp = schema_stamp()
        assert "repro.schema/" in stamp and "uml.format/" in stamp
