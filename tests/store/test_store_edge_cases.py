"""Store/backend edge cases the fuzzer's corpus and cache rely on:
deterministic LRU tie-breaking, recovery from torn writes, and
degraded-but-correct behavior on an unwritable cache directory."""

import os
import time

import pytest

from repro.engine import ExperimentEngine
from repro.engine.backends import DiskBackend, TieredBackend
from repro.store import ArtifactStore
from repro.store.artifact import ArtifactStore as _Store


class TestGcMtimeTieBreak:
    def test_equal_mtimes_drop_in_path_name_order(self, tmp_store):
        keys = [f"k{i}" for i in range(6)]
        for key in keys:
            tmp_store.put(key, "x" * 50)
        # Force one identical mtime everywhere: LRU has no signal left,
        # so eviction must fall back to a deterministic order (file
        # name), not dict/iteration luck.
        stamp = time.time() - 100
        paths = {key: tmp_store.path_for(key) for key in keys}
        for path in paths.values():
            os.utime(path, (stamp, stamp))
        survivor_budget = sum(
            paths[key].stat().st_size for key in keys) // 2
        report = tmp_store.gc(survivor_budget)
        assert report.dropped > 0
        survivors = {key for key in keys if key in tmp_store}
        # The dropped set must be exactly the name-order prefix.
        by_name = sorted(keys, key=lambda k: paths[k].name)
        expected_dropped = set(by_name[:report.dropped])
        assert survivors == set(keys) - expected_dropped

    def test_tie_break_is_stable_across_stores(self, tmp_path):
        """Two directories with the same keys and one shared mtime gc
        down to the same survivor set."""
        survivor_sets = []
        for sub in ("a", "b"):
            store = ArtifactStore(tmp_path / sub)
            for i in range(5):
                store.put(f"key-{i}", list(range(20)))
            stamp = time.time() - 50
            for i in range(5):
                path = store.path_for(f"key-{i}")
                os.utime(path, (stamp, stamp))
            store.gc(store.total_bytes() // 2)
            survivor_sets.append(
                {f"key-{i}" for i in range(5)
                 if f"key-{i}" in store})
        assert survivor_sets[0] == survivor_sets[1]


class TestFsckAfterTornWrite:
    def test_truncated_payload_is_dropped_and_recoverable(self,
                                                          tmp_store):
        tmp_store.put("good", {"v": 1})
        tmp_store.put("torn", {"v": 2})
        path = tmp_store.path_for("torn")
        data = path.read_bytes()
        # Simulate a torn write: header intact, payload cut mid-way.
        path.write_bytes(data[:len(data) - 7])
        report = tmp_store.fsck()
        assert report.dropped == 1
        assert str(path) in report.dropped_paths
        assert report.checked == 1
        assert not report.clean
        # The store keeps working: miss on the torn key, hit on the
        # good one, and a re-put heals it.
        assert tmp_store.get("torn") is None
        assert tmp_store.load("good") == {"v": 1}
        tmp_store.put("torn", {"v": 3})
        assert tmp_store.load("torn") == {"v": 3}
        assert tmp_store.fsck().clean

    def test_truncated_header_line_is_dropped(self, tmp_store):
        tmp_store.put("k", "value")
        path = tmp_store.path_for("k")
        path.write_bytes(path.read_bytes()[:5])   # no newline survives
        report = tmp_store.fsck()
        assert report.dropped == 1
        assert len(tmp_store) == 0

    def test_load_drops_torn_entry_on_sight(self, tmp_store):
        tmp_store.put("k", [1, 2, 3])
        path = tmp_store.path_for("k")
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(KeyError):
            tmp_store.load("k")
        assert tmp_store.stats.corrupt_dropped == 1
        assert not path.exists()


class _ReadOnlyStore(_Store):
    """An ArtifactStore whose directory went read-only after creation
    (fault injection: chmod is unreliable under root, so ``put`` raises
    the same ``OSError`` the filesystem would)."""

    def put(self, key, value):
        raise OSError(30, "Read-only file system")


class TestReadOnlyCacheDir:
    def _read_only_backend(self, tmp_path):
        store = _ReadOnlyStore(tmp_path / "ro")
        return DiskBackend(store)

    def test_disk_backend_degrades_to_miss_not_crash(self, tmp_path):
        backend = self._read_only_backend(tmp_path)
        backend.store("k", "v")          # swallowed, not raised
        assert "k" not in backend
        with pytest.raises(KeyError):
            backend.load("k")

    def test_engine_still_compiles_on_read_only_store(self, tmp_path,
                                                      flat_machine):
        backend = TieredBackend(self._read_only_backend(tmp_path))
        engine = ExperimentEngine(backend=backend)
        result = engine.compile_machine(flat_machine,
                                        pattern="flat-switch")
        assert result.total_size > 0
        # Second call: served from the memory tier (the disk write
        # failed silently, the memory tier still holds the value).
        again = engine.compile_machine(flat_machine,
                                       pattern="flat-switch")
        assert again is result
        assert engine.stats.hits == 1

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores directory permissions")
    def test_real_chmod_read_only_directory(self, tmp_path,
                                            flat_machine):
        root = tmp_path / "ro-real"
        store = ArtifactStore(root)
        for sub in (root, root / "objects", root / "tmp"):
            os.chmod(sub, 0o555)
        try:
            backend = TieredBackend(DiskBackend(store))
            engine = ExperimentEngine(backend=backend)
            result = engine.compile_machine(flat_machine,
                                            pattern="flat-switch")
            assert result.total_size > 0
        finally:
            for sub in (root, root / "objects", root / "tmp"):
                os.chmod(sub, 0o755)
