"""Consistent hashing: ring determinism and the reshard guarantees.

The cluster's whole sharding story hangs on two properties of
:class:`repro.store.HashRing`, checked here exhaustively and by
hypothesis:

* **removal stability** — dropping a shard never changes the owner of
  a key the dropped shard didn't own (reads of previously written
  fingerprints never miss on the surviving shards);
* **addition minimality** — adding a shard only moves keys *onto* the
  new shard (~1/N of them); nothing shuffles between the old shards.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ShardedBackend, backend_from_spec
from repro.store import HashRing

_KEYS = [f"fingerprint-{i:04d}" for i in range(400)]


class TestHashRingBasics:
    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"])
        owners = {key: ring.lookup(key) for key in _KEYS}
        again = HashRing(["c", "b", "a"])       # order-insensitive
        assert owners == {key: again.lookup(key) for key in _KEYS}
        assert set(owners.values()) == {"a", "b", "c"}

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(key) == "only" for key in _KEYS)

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError):
            HashRing([]).lookup("k")

    def test_assignment_covers_every_key(self):
        ring = HashRing(["a", "b"])
        owners = ring.assignment(_KEYS)
        assert sorted(owners) == sorted(_KEYS)
        assert set(owners.values()) <= {"a", "b"}

    def test_spread_is_roughly_even(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        owners = ring.assignment(_KEYS)
        for node in ring.nodes:
            share = sum(1 for owner in owners.values() if owner == node)
            # 400 keys over 4 shards with 64 vnodes: no shard should
            # be empty or hog most of the space.
            assert 20 <= share <= 250


@st.composite
def _ring_nodes(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    return [f"shard-{i:02d}" for i in range(n)]


class TestReshardProperties:
    @settings(max_examples=50, deadline=None)
    @given(nodes=_ring_nodes(), data=st.data())
    def test_removal_never_moves_surviving_keys(self, nodes, data):
        ring = HashRing(nodes)
        dropped = data.draw(st.sampled_from(nodes))
        shrunk = ring.without_node(dropped)
        for key in _KEYS[:100]:
            owner = ring.lookup(key)
            if owner != dropped:
                # a key the dropped shard didn't own stays put —
                # previously written artifacts stay findable.
                assert shrunk.lookup(key) == owner

    @settings(max_examples=50, deadline=None)
    @given(nodes=_ring_nodes())
    def test_addition_only_moves_keys_to_the_new_node(self, nodes):
        ring = HashRing(nodes)
        grown = ring.with_node("shard-new")
        moved = 0
        for key in _KEYS:
            before, after = ring.lookup(key), grown.lookup(key)
            if before != after:
                assert after == "shard-new"
                moved += 1
        # ~1/(N+1) of keys move; allow generous slack (vnode variance)
        # but reject wholesale reshuffles.
        assert moved <= 3 * len(_KEYS) / (len(nodes) + 1)

    @settings(max_examples=25, deadline=None)
    @given(nodes=_ring_nodes())
    def test_add_then_remove_is_identity(self, nodes):
        ring = HashRing(nodes)
        roundtrip = ring.with_node("shard-new").without_node("shard-new")
        assert [roundtrip.lookup(key) for key in _KEYS[:100]] == \
            [ring.lookup(key) for key in _KEYS[:100]]


class TestShardedBackend:
    def test_routing_is_stable_and_exhaustive(self, tmp_path):
        backend = ShardedBackend.over_directory(str(tmp_path), 3)
        for index, key in enumerate(_KEYS[:60]):
            backend.store(key, {"value": index})
        assert len(backend) == 60
        for index, key in enumerate(_KEYS[:60]):
            value, origin = backend.load(key)
            assert value == {"value": index}
        sizes = backend.shard_sizes()
        assert sum(sizes.values()) == 60 and len(sizes) == 3

    def test_surviving_shards_keep_serving_after_reshard(self, tmp_path):
        """Rebuild over a *subset* of the shard directories: every key
        a surviving shard owned before is still served from it."""
        full = ShardedBackend.over_directory(str(tmp_path), 3)
        for key in _KEYS[:90]:
            full.store(key, key.upper())
        survivors = [(name, shard) for name, shard in full.shards.items()
                     if name != full.shard_for(_KEYS[0])]
        shrunk = ShardedBackend(survivors)
        hits = 0
        for key in _KEYS[:90]:
            owner = full.shard_for(key)
            if owner == full.shard_for(_KEYS[0]):
                continue                     # lived on the dropped shard
            assert shrunk.shard_for(key) == owner
            value, _origin = shrunk.load(key)
            assert value == key.upper()
            hits += 1
        assert hits > 0

    def test_backend_from_spec_shards(self, tmp_path):
        backend = backend_from_spec("disk", cache_dir=str(tmp_path),
                                    shards=2)
        assert isinstance(backend, ShardedBackend)
        with pytest.raises(ValueError):
            backend_from_spec("memory", shards=2)

    def test_missing_key_raises(self, tmp_path):
        backend = ShardedBackend.over_directory(str(tmp_path), 2)
        with pytest.raises(KeyError):
            backend.load("absent")
        assert "absent" not in backend
