"""Multi-process store safety.

The store's contract is lockless cross-process sharing: concurrent
writers of the same keys must never produce a torn or corrupt entry,
and concurrent compilers against one ``--cache-dir`` must agree on
results byte for byte.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.store import ArtifactStore

_REPO = pathlib.Path(__file__).resolve().parents[2]

_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(_REPO / "src")] + ([_ENV["PYTHONPATH"]]
                            if _ENV.get("PYTHONPATH") else []))

#: Worker: hammer one shared store with overlapping put/load cycles.
_HAMMER = """
import sys
from repro.store import ArtifactStore
root, worker = sys.argv[1], int(sys.argv[2])
store = ArtifactStore(root)
for round_no in range(30):
    for key_no in range(10):
        key = f"shared-{key_no}"
        store.put(key, {"key": key, "payload": list(range(200))})
        value = store.get(key)
        assert value is None or value["key"] == key, value
print("worker", worker, "done")
"""

#: Worker: compile the experiment-model grid against a shared cache
#: dir and print a deterministic transcript of the results.
_COMPILE_GRID = """
import sys
from repro.codegen import ALL_PATTERNS
from repro.engine import ExperimentEngine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
engine = ExperimentEngine(cache_dir=sys.argv[1])
for build in (flat_machine_with_unreachable_state,
              hierarchical_machine_with_shadowed_composite):
    machine = build()
    for gen in ALL_PATTERNS:
        for target in ("rt32", "rt16"):
            result = engine.compile_machine(machine, gen.name,
                                            target=target)
            print(machine.name, gen.name, target, result.total_size)
            print(result.module.listing())
"""


def _spawn(code, *args):
    return subprocess.Popen([sys.executable, "-c", code, *map(str, args)],
                            env=_ENV, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _join(proc, timeout=300):
    out, err = proc.communicate(timeout=timeout)
    assert proc.returncode == 0, err[-2000:]
    return out


@pytest.mark.parametrize("n_workers", [4])
def test_concurrent_writers_never_corrupt(tmp_path, n_workers):
    root = tmp_path / "shared-store"
    procs = [_spawn(_HAMMER, root, i) for i in range(n_workers)]
    for proc in procs:
        _join(proc)
    store = ArtifactStore(root)
    report = store.fsck()
    assert report.clean, f"corrupt entries after race: {report}"
    assert report.checked == 10
    for key_no in range(10):
        assert store.load(f"shared-{key_no}")["key"] == f"shared-{key_no}"
    assert list((root / "tmp").iterdir()) == [], "stray temp files"


def test_two_processes_same_workload_byte_identical(tmp_path):
    """The satellite scenario: two *processes* compile the same grid
    against one cache dir, concurrently, from cold."""
    cache = tmp_path / "cache"
    first = _spawn(_COMPILE_GRID, cache)
    second = _spawn(_COMPILE_GRID, cache)
    out_first, out_second = _join(first), _join(second)
    assert out_first == out_second
    assert "rt16" in out_first and "rt32" in out_first
    store = ArtifactStore(cache)
    report = store.fsck()
    assert report.clean, f"corrupt entries after race: {report}"
    # 2 machines x 4 patterns x 2 targets unique module artifacts ended
    # on disk, plus the per-unit artifacts the delta tier persists
    # alongside them (shared backend).
    assert report.checked >= 16


def test_warm_third_process_is_all_disk_hits(tmp_path):
    cache = tmp_path / "cache"
    _join(_spawn(_COMPILE_GRID, cache))           # cold populate
    warm_out = _join(_spawn(_COMPILE_GRID, cache))

    # Warm run in-process to read the stats the subprocess can't share.
    from repro.codegen import ALL_PATTERNS
    from repro.engine import ExperimentEngine
    from repro.experiments.models import (
        flat_machine_with_unreachable_state,
        hierarchical_machine_with_shadowed_composite)
    engine = ExperimentEngine(cache_dir=str(cache))
    for build in (flat_machine_with_unreachable_state,
                  hierarchical_machine_with_shadowed_composite):
        machine = build()
        for gen in ALL_PATTERNS:
            for target in ("rt32", "rt16"):
                engine.compile_machine(machine, gen.name, target=target)
    assert engine.stats.misses == 0
    assert engine.stats.disk_hits == 16
    assert warm_out  # populated transcript came back
