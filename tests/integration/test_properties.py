"""Property-based tests (hypothesis) on the system's core invariants.

* expression parser/printer/evaluator consistency and serialization
  round-trips over random expression trees;
* optimizer behavior preservation over random machine workloads;
* interpreter determinism;
* SSA well-formedness and translation validation (same program behavior
  at -O0 and -Os) over random straight-line/branchy programs;
* size monotonicity: adding dead structure never shrinks generated code.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import OptLevel, compile_unit
from repro.compiler.gimple.interp import GimpleInterpreter
from repro.cpp import ast as C
from repro.cpp.types import INT
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.optim import check_equivalence, optimize
from repro.pipeline import compile_machine
from repro.semantics import observable_equal, run_scenario
from repro.uml import eval_expr, EvalError
from repro.uml.serialize import expr_from_dict, expr_to_dict
from repro.uml import actions as A

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_var_names = st.sampled_from(["x", "y", "count", "mode"])


def exprs(max_depth: int = 4):
    base = st.one_of(
        st.integers(-100, 100).map(A.IntLit),
        st.booleans().map(A.BoolLit),
        _var_names.map(A.VarRef),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "/", "%", "<", "<=",
                                       ">", ">=", "==", "!=", "&&", "||"]),
                      children, children).map(lambda t: A.BinOp(*t)),
            st.tuples(st.sampled_from(["!", "-"]),
                      children).map(lambda t: A.UnaryOp(*t)),
        )

    return st.recursive(base, extend, max_leaves=2 ** max_depth)


ENV = {"x": 3, "y": -2, "count": 7, "mode": 1}


class TestExpressionProperties:
    @given(exprs())
    @settings(max_examples=200)
    def test_serialization_round_trip(self, expr):
        assert expr_from_dict(expr_to_dict(expr)) == expr

    @given(exprs())
    @settings(max_examples=200)
    def test_const_fold_preserves_value(self, expr):
        try:
            expected = eval_expr(expr, ENV)
        except EvalError:
            return  # division by zero somewhere: folding may keep or not
        folded = A.const_fold(expr)
        got = eval_expr(folded, ENV)
        if isinstance(expected, bool) or isinstance(got, bool):
            # Boolean operators may fold `true && e` to `e`; guards are
            # evaluated in a boolean context, so truthiness is the
            # preserved property (C++ `&&` likewise yields bool).
            assert bool(got) == bool(expected)
        else:
            assert got == expected

    @given(exprs())
    @settings(max_examples=100)
    def test_free_variables_subset_of_env(self, expr):
        assert A.free_variables(expr) <= set(ENV)

    @given(exprs(max_depth=3))
    @settings(max_examples=100)
    def test_eval_is_deterministic(self, expr):
        try:
            first = eval_expr(expr, ENV)
        except EvalError:
            return
        assert eval_expr(expr, ENV) == first


workload_specs = st.builds(
    WorkloadSpec,
    n_live=st.integers(2, 6),
    n_dead=st.integers(0, 3),
    n_shadowed_composites=st.integers(0, 1),
    composite_width=st.integers(1, 3),
    entry_calls=st.integers(0, 2),
    exit_calls=st.integers(0, 1),
    events_per_state=st.integers(1, 2),
    seed=st.integers(0, 2 ** 16),
)


class TestModelProperties:
    @given(workload_specs)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimizer_preserves_behavior(self, spec):
        machine = generate_machine(spec)
        optimized = optimize(machine).optimized
        report = check_equivalence(machine, optimized,
                                   exhaustive_depth=1, n_random=6,
                                   random_length=8)
        assert report.equivalent, report.summary()

    @given(workload_specs)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimizer_never_grows_generated_code(self, spec):
        machine = generate_machine(spec)
        optimized = optimize(machine).optimized
        before = compile_machine(machine, "nested-switch").total_size
        after = compile_machine(optimized, "nested-switch").total_size
        assert after <= before

    @given(workload_specs, st.lists(st.integers(1, 12), max_size=10))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_interpreter_deterministic(self, spec, event_ids):
        machine = generate_machine(spec)
        events = [f"ev{i}" for i in event_ids]
        a = run_scenario(machine, events)
        b = run_scenario(machine, events)
        assert observable_equal(a.trace, b.trace)
        assert a.active_states == b.active_states

    @given(st.integers(0, 4), st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dead_states_only_add_size(self, n_dead, seed):
        clean = generate_machine(WorkloadSpec(n_live=3, seed=seed))
        dirty = generate_machine(WorkloadSpec(n_live=3, n_dead=n_dead,
                                              seed=seed))
        size_clean = compile_machine(clean, "nested-switch").total_size
        size_dirty = compile_machine(dirty, "nested-switch").total_size
        assert size_dirty >= size_clean


def _random_program_unit(ops, consts):
    """Straight-line arithmetic over two params with a branch, as C++."""
    unit = C.TranslationUnit("t")
    expr: C.Expr = C.Var("a")
    for op, k in zip(ops, consts):
        if op in ("/", "%"):
            # Guard against division by zero: use a non-zero constant.
            k = k if k != 0 else 1
            expr = C.Binary(op, expr, C.IntLit(k))
        else:
            expr = C.Binary(op, expr, C.Binary("+", C.Var("b"),
                                               C.IntLit(k)))
    body = C.Block()
    body.add(C.VarDecl("v", INT, expr))
    body.add(C.If(C.Binary("<", C.Var("v"), C.IntLit(0)),
                  C.Block([C.Return(C.Unary("-", C.Var("v")))]),
                  C.Block([C.Return(C.Var("v"))])))
    unit.functions.append(C.Function(
        "f", [C.Param("a", INT), C.Param("b", INT)], INT, body))
    return unit


class TestTranslationValidation:
    @given(st.lists(st.sampled_from(["+", "-", "*", "/", "%"]),
                    min_size=1, max_size=6),
           st.lists(st.integers(-50, 50), min_size=6, max_size=6),
           st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_result_at_o0_and_os(self, ops, consts, a, b):
        unit = _random_program_unit(ops, consts)
        results = {}
        for level in (OptLevel.O0, OptLevel.OS):
            compiled = compile_unit(unit, level)
            interp = GimpleInterpreter(compiled.program)
            try:
                results[level] = interp.call("f", (a, b))
            except Exception as exc:  # division by zero at runtime
                results[level] = type(exc).__name__
        assert results[OptLevel.O0] == results[OptLevel.OS]
