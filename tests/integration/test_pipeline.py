"""End-to-end pipeline tests (the two-step optimization approach)."""

import pytest

from repro import (build_flat_example, build_hierarchical_example,
                   compile_machine, optimize_and_compare, run_pipeline)
from repro.compiler import OptLevel
from repro.semantics import SemanticsConfig


class TestRunPipeline:
    def test_baseline_vs_two_step(self):
        machine = build_hierarchical_example()
        baseline = run_pipeline(machine, optimize_model=False)
        two_step = run_pipeline(machine, optimize_model=True)
        assert two_step.total_size < baseline.total_size
        assert baseline.model_report is None
        assert two_step.model_report is not None
        assert two_step.model_report.changed

    def test_selection_is_honored(self):
        machine = build_hierarchical_example()
        only_guards = run_pipeline(
            machine, model_optimizations=["simplify-guards"])
        full = run_pipeline(machine)
        assert full.total_size < only_guards.total_size

    def test_non_uml_semantics_blocks_shadowing(self):
        machine = build_hierarchical_example()
        non_uml = run_pipeline(machine, semantics=SemanticsConfig(
            completion_priority=False))
        uml = run_pipeline(machine)
        # Without completion priority, S3 is live and must stay.
        assert non_uml.total_size > uml.total_size
        assert "remove-shadowed-transitions" in \
            non_uml.model_report.skipped_passes

    def test_summary_text(self):
        result = run_pipeline(build_flat_example())
        text = result.summary()
        assert "Fig1Flat" in text and "bytes" in text

    @pytest.mark.parametrize("pattern", ["state-table", "nested-switch",
                                         "state-pattern"])
    @pytest.mark.parametrize("level", [OptLevel.O0, OptLevel.OS])
    def test_every_pattern_level_combination_compiles(self, pattern, level):
        result = run_pipeline(build_flat_example(), pattern=pattern,
                              level=level)
        assert result.total_size > 0


class TestOptimizeAndCompare:
    def test_gain_fields_consistent(self):
        cmp = optimize_and_compare(build_flat_example())
        assert cmp.gain_bytes == cmp.size_before - cmp.size_after
        assert 0 < cmp.gain_percent < 100

    def test_equivalence_checked_by_default(self):
        cmp = optimize_and_compare(build_flat_example())
        assert cmp.equivalence.scenarios_run > 0
        assert cmp.equivalence.equivalent

    def test_check_behavior_false_skips_scenarios(self):
        cmp = optimize_and_compare(build_flat_example(),
                                   check_behavior=False)
        assert cmp.equivalence.scenarios_run == 0

    def test_summary_mentions_sizes(self):
        cmp = optimize_and_compare(build_flat_example())
        assert str(cmp.size_before) in cmp.summary()

    def test_semantics_is_threaded_through(self):
        """Regression: ``optimize_and_compare`` used to drop *semantics*
        and always compare under ``UML_DEFAULT_SEMANTICS``."""
        machine = build_hierarchical_example()
        default = optimize_and_compare(machine, check_behavior=False)
        non_uml = optimize_and_compare(
            machine, check_behavior=False,
            semantics=SemanticsConfig(completion_priority=False))
        # Without completion priority the shadowing passes are skipped,
        # S3 stays live, and the optimized model compiles bigger.
        assert non_uml.size_after > default.size_after
        assert non_uml.size_before == default.size_before
        assert "remove-shadowed-transitions" in \
            non_uml.model_report.skipped_passes

    def test_semantics_reaches_the_equivalence_check(self):
        machine = build_hierarchical_example()
        non_uml = optimize_and_compare(
            machine, semantics=SemanticsConfig(completion_priority=False))
        # Machines must still be equivalent *under the chosen semantics*.
        assert non_uml.equivalence.equivalent


class TestCompileMachine:
    def test_dumps_available_on_request(self):
        result = compile_machine(build_flat_example(),
                                 capture_dumps=True)
        assert "lower" in result.dumps

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            compile_machine(build_flat_example(), pattern="nope")
