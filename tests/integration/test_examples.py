"""Smoke-run every example script (they are part of the public surface)."""

import os
import pathlib
import subprocess
import sys

import pytest

_REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted(_REPO.joinpath("examples").glob("*.py"))

#: Examples import `repro` like an installed package; run them with src/
#: on PYTHONPATH so the suite works without `pip install -e .`.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(_REPO / "src")] + ([_ENV["PYTHONPATH"]]
                            if _ENV.get("PYTHONPATH") else []))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "cruise_control", "protocol_handler",
            "paper_walkthrough", "vm_conformance", "service_demo"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    proc = subprocess.run([sys.executable, str(script)], env=_ENV,
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_shows_the_paper_story():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    proc = subprocess.run([sys.executable, str(script)], env=_ENV,
                          capture_output=True, text=True, timeout=600)
    out = proc.stdout
    assert "dead state Maintenance" in out
    assert "post-DCE dump still contains" in out
    assert "observationally equivalent" in out
