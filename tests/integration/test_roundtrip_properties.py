"""Property-based round-trips over *generator-produced* inputs.

Two serialization contracts the fuzz subsystem leans on, checked over
the fuzz generator's own output space (hypothesis drives the seeds and
profiles, the seeded generator supplies structure hypothesis could not
easily compose):

* ``uml.serialize``: ``load(dump(m))`` is structurally identical to
  ``m`` — same canonical dict, same engine fingerprint — for arbitrary
  generated machines (composites, cross-region transitions, guards
  with calls, duplicate transitions, dead regions, degenerate shapes);
* ``vm.encoding``: ``decode(encode(insn))`` is ``insn`` for arbitrary
  in-register-file instructions of every registered target.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.rtl.ir import RInstr
from repro.compiler.target import available_targets, get_target
from repro.engine.fingerprint import machine_fingerprint
from repro.fuzz import DEFAULT_PROFILES, generate_case
from repro.uml import dumps_machine, loads_machine, machine_to_dict
from repro.vm.encoding import OperandPool, TargetEncoding

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

profiles = st.sampled_from(DEFAULT_PROFILES)
seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestMachineSerializationRoundTrip:
    @given(seed=seeds, profile=profiles)
    @_SETTINGS
    def test_load_dump_is_identity(self, seed, profile):
        machine = generate_case(seed, profile).machine
        restored = loads_machine(dumps_machine(machine))
        assert machine_to_dict(restored) == machine_to_dict(machine)
        assert machine_fingerprint(restored) == \
            machine_fingerprint(machine)

    @given(seed=seeds, profile=profiles)
    @_SETTINGS
    def test_double_round_trip_is_stable(self, seed, profile):
        machine = generate_case(seed, profile).machine
        once = dumps_machine(loads_machine(dumps_machine(machine)))
        assert once == dumps_machine(machine)


def _encodings():
    return [TargetEncoding(get_target(name))
            for name in available_targets()]


_ENCODINGS = _encodings()
encodings = st.sampled_from(_ENCODINGS)


@st.composite
def instructions(draw, encoding):
    """A random in-register-file instruction of *encoding*'s target."""
    op = draw(st.sampled_from(encoding.mnemonics))
    regs = st.sampled_from(encoding.reg_names)
    n_defs = draw(st.integers(0, 2))
    n_uses = draw(st.integers(0, 2))
    imm = draw(st.one_of(st.none(), st.integers(-(2 ** 31), 2 ** 31 - 1)))
    symbol = draw(st.one_of(st.none(),
                            st.sampled_from(["f", "g_obj", "Ctx_init"])))
    label = draw(st.one_of(st.none(), st.sampled_from([".L0", ".L42"])))
    table = draw(st.one_of(
        st.none(),
        st.lists(st.sampled_from([".L0", ".L1", ".L2"]),
                 min_size=1, max_size=4).map(tuple)))
    return RInstr(op,
                  defs=tuple(draw(regs) for _ in range(n_defs)),
                  uses=tuple(draw(regs) for _ in range(n_uses)),
                  imm=imm, symbol=symbol, target=label, table=table,
                  comment="dropped by the codec")


class TestEncodingRoundTrip:
    @given(data=st.data(), encoding=encodings)
    @_SETTINGS
    def test_decode_encode_is_identity(self, data, encoding):
        pool = OperandPool()
        instr = data.draw(instructions(encoding))
        blob = encoding.encode(instr, pool, context="prop")
        assert len(blob) == encoding.size_of(instr.op)
        decoded, size = encoding.decode(blob, 0, pool)
        assert size == len(blob)
        # Everything semantic survives; the comment is listing sugar.
        assert decoded.op == instr.op
        assert decoded.defs == instr.defs
        assert decoded.uses == instr.uses
        assert decoded.imm == instr.imm
        assert decoded.symbol == instr.symbol
        assert decoded.target == instr.target
        assert decoded.table == instr.table

    @given(data=st.data(), encoding=encodings)
    @_SETTINGS
    def test_stream_of_instructions_round_trips(self, data, encoding):
        pool = OperandPool()
        stream = [data.draw(instructions(encoding)) for _ in range(6)]
        blob = b"".join(encoding.encode(i, pool, context="prop")
                        for i in stream)
        offset, decoded = 0, []
        while offset < len(blob):
            instr, size = encoding.decode(blob, offset, pool)
            decoded.append(instr)
            offset += size
        assert [d.op for d in decoded] == [i.op for i in stream]
        assert all(d.imm == i.imm and d.defs == i.defs
                   and d.uses == i.uses
                   for d, i in zip(decoded, stream))
