"""Tests for the flattened-switch pattern (the fourth generator)."""

import itertools
import random

import pytest

from repro.codegen import (ALL_GENERATORS, ALL_PATTERNS,
                           FlatSwitchGenerator, generator_by_name)
from repro.codegen.harness import (GeneratedMachine,
                                   observable_calls_of_model)
from repro.compiler import OptLevel, compile_unit
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)

MACHINES = [flat_machine_with_unreachable_state,
            hierarchical_machine_with_shadowed_composite]


def scenarios_for(machine, depth=2, n_random=8, length=8, seed=3):
    alphabet = sorted(e.name for e in machine.events.values())
    out = [list(t) for t in itertools.product(alphabet, repeat=depth)]
    rng = random.Random(seed)
    out += [[rng.choice(alphabet) for _ in range(length)]
            for _ in range(n_random)]
    return out


class TestRegistration:
    def test_fourth_pattern_is_registered(self):
        assert isinstance(generator_by_name("flat-switch"),
                          FlatSwitchGenerator)
        assert FlatSwitchGenerator in ALL_PATTERNS
        assert len(ALL_PATTERNS) == len(ALL_GENERATORS) + 1

    def test_paper_generators_unchanged(self):
        """Table 1 reproduces the paper's three rows; flat-switch must not
        sneak into ALL_GENERATORS."""
        assert FlatSwitchGenerator not in ALL_GENERATORS
        assert len(ALL_GENERATORS) == 3


@pytest.mark.parametrize("make_machine", MACHINES,
                         ids=[m.__name__ for m in MACHINES])
class TestDifferentialBehavior:
    def test_matches_model_interpreter(self, make_machine):
        machine = make_machine()
        for events in scenarios_for(machine):
            gm = GeneratedMachine(machine, FlatSwitchGenerator())
            gm.send_all(events)
            ref = observable_calls_of_model(machine, events)
            assert gm.calls == ref, (
                f"flat-switch diverges on {events}:\n"
                f"  generated: {gm.calls}\n  model:     {ref}")

    def test_matches_model_after_optimizing_compile(self, make_machine):
        machine = make_machine()
        events = scenarios_for(machine, depth=2, n_random=2)[:6]
        for scenario in events:
            gm = GeneratedMachine(machine, FlatSwitchGenerator(),
                                  level=OptLevel.OS)
            gm.send_all(scenario)
            assert gm.calls == observable_calls_of_model(machine, scenario)


class TestStructure:
    def test_single_class_no_submachines(self):
        machine = hierarchical_machine_with_shadowed_composite()
        unit = FlatSwitchGenerator().generate(machine)
        assert len(unit.classes) == 1  # flattening removed the hierarchy

    def test_no_table_globals(self):
        """Unlike STT there is no rows/actions rodata — dispatch is code."""
        machine = hierarchical_machine_with_shadowed_composite()
        unit = FlatSwitchGenerator().generate(machine)
        names = {g.name for g in unit.globals}
        assert not any("rows" in n or "actions" in n for n in names)

    def test_compiles_to_positive_size(self):
        machine = hierarchical_machine_with_shadowed_composite()
        unit = FlatSwitchGenerator().generate(machine)
        result = compile_unit(unit, OptLevel.OS)
        assert result.total_size > 0
