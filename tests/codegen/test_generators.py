"""Tests for the three code generators: structure + differential behavior."""

import itertools
import random

import pytest

from repro.codegen import (ALL_GENERATORS, CodegenError, GenConfig,
                           NestedSwitchGenerator, StatePatternGenerator,
                           StateTableGenerator, generator_by_name)
from repro.codegen.harness import (GeneratedMachine,
                                   observable_calls_of_model)
from repro.compiler import OptLevel, compile_unit
from repro.cpp import print_unit
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.uml import Assign, StateMachineBuilder, calls, parse_expr

GEN_IDS = [g.name for g in ALL_GENERATORS]


def scenarios_for(machine, depth=2, n_random=8, length=8, seed=3):
    alphabet = sorted(e.name for e in machine.events.values())
    out = [list(t) for t in itertools.product(alphabet, repeat=depth)]
    rng = random.Random(seed)
    out += [[rng.choice(alphabet) for _ in range(length)]
            for _ in range(n_random)]
    return out


def assert_differential(machine, gen_cls, level=None):
    for events in scenarios_for(machine):
        gm = GeneratedMachine(machine, gen_cls(), level=level)
        gm.send_all(events)
        ref = observable_calls_of_model(machine, events)
        assert gm.calls == ref, (
            f"{gen_cls.name} diverges on {events}:\n"
            f"  generated: {gm.calls}\n  model:     {ref}")


class TestRegistry:
    def test_generator_by_name(self):
        for gen_cls in ALL_GENERATORS:
            assert isinstance(generator_by_name(gen_cls.name), gen_cls)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            generator_by_name("banana")

    def test_class_prefix_config(self):
        gen = NestedSwitchGenerator(GenConfig(class_prefix="App"))
        m = flat_machine_with_unreachable_state()
        assert gen.class_name(m) == "AppFig1Flat"


@pytest.mark.parametrize("gen_cls", ALL_GENERATORS, ids=GEN_IDS)
class TestDifferentialBehavior:
    """Generated + compiled code must behave exactly like the model."""

    def test_flat_model(self, gen_cls):
        assert_differential(flat_machine_with_unreachable_state(), gen_cls)

    def test_hierarchical_model(self, gen_cls):
        assert_differential(
            hierarchical_machine_with_shadowed_composite(), gen_cls)

    def test_optimized_pipeline_matches(self, gen_cls):
        # With the full -Os middle end between generator and execution.
        assert_differential(flat_machine_with_unreachable_state(), gen_cls,
                            level=OptLevel.OS)

    def test_guarded_counter_model(self, gen_cls):
        b = StateMachineBuilder("Counter")
        b.attribute("n", 0)
        b.state("Idle", entry=calls("idle_in"))
        b.state("Busy", entry=calls("busy_in"), exit=calls("busy_out"))
        b.initial_to("Idle")
        b.transition("Idle", "Busy", on="start",
                     effect=[Assign("n", parse_expr("n + 1"))])
        b.transition("Busy", "Idle", on="stop", guard="n < 3")
        b.transition("Busy", "final", on="stop", guard="n >= 3")
        machine = b.build()
        assert_differential(machine, gen_cls)

    def test_internal_transition_model(self, gen_cls):
        b = StateMachineBuilder("Int")
        b.state("A", entry=calls("a_in"), exit=calls("a_out"))
        b.initial_to("A")
        b.internal("A", on="tick", effect=calls("tock"))
        b.transition("A", "final", on="stop")
        assert_differential(b.build(), gen_cls)

    def test_completion_chain_model(self, gen_cls):
        # A -> B -> C through completion transitions at start-up.
        b = StateMachineBuilder("Chain")
        b.state("A", entry=calls("a_in"))
        b.state("B", entry=calls("b_in"))
        b.state("C", entry=calls("c_in"))
        b.initial_to("A")
        b.completion("A", "B")
        b.completion("B", "C")
        b.transition("C", "final", on="stop")
        assert_differential(b.build(), gen_cls)

    def test_is_final_observer(self, gen_cls):
        m = flat_machine_with_unreachable_state()
        gm = GeneratedMachine(m, gen_cls())
        assert not gm.is_final()
        gm.send_all(["e1", "e4"])  # S1 -e1-> S3 -e4-> final
        assert gm.is_final()

    def test_attribute_readback(self, gen_cls):
        b = StateMachineBuilder("Acc")
        b.attribute("total", 5)
        b.state("S")
        b.initial_to("S")
        b.transition("S", "S", on="add",
                     effect=[Assign("total", parse_expr("total + 2"))])
        machine = b.build()
        gm = GeneratedMachine(machine, gen_cls())
        gm.send_all(["add", "add"])
        assert gm.read_attribute("total") == 9


class TestPatternStructure:
    def test_nested_switch_has_submachine_class(self):
        m = hierarchical_machine_with_shadowed_composite()
        unit = NestedSwitchGenerator().generate(m)
        names = [c.name for c in unit.classes]
        assert "Fig1Hier_S3" in names  # the composite's submachine class

    def test_state_pattern_one_class_per_state(self):
        m = flat_machine_with_unreachable_state()
        unit = StatePatternGenerator().generate(m)
        names = {c.name for c in unit.classes}
        for state in ("S1", "S2", "S3"):
            assert f"Fig1Flat_{state}" in names
        assert "Fig1Flat_State" in names  # abstract base

    def test_state_pattern_uses_virtual_dispatch(self):
        m = flat_machine_with_unreachable_state()
        unit = StatePatternGenerator().generate(m)
        result = compile_unit(unit, OptLevel.OS)
        assert any(obj.name.startswith("vtbl.")
                   for obj in result.module.data_objects)

    def test_state_table_rows_are_rodata(self):
        m = flat_machine_with_unreachable_state()
        unit = StateTableGenerator().generate(m)
        result = compile_unit(unit, OptLevel.OS)
        rows = next(obj for obj in result.module.data_objects
                    if obj.name == "Fig1Flat_rows")
        assert rows.section == "rodata"
        assert rows.size >= 24 * 4  # >= four 6-word rows

    def test_state_table_row_count_matches_flattening(self):
        from repro.codegen import flatten_machine
        m = hierarchical_machine_with_shadowed_composite()
        flat = flatten_machine(m)
        unit = StateTableGenerator().generate(m)
        result = compile_unit(unit, OptLevel.OS)
        rows = next(obj for obj in result.module.data_objects
                    if obj.name == "Fig1Hier_rows")
        assert rows.size == 24 * len(flat.transitions)

    def test_printed_unit_is_plausible_cpp(self):
        m = flat_machine_with_unreachable_state()
        for gen_cls in ALL_GENERATORS:
            text = print_unit(gen_cls().generate(m))
            assert "enum Event" in text
            assert 'extern "C"' in text
            assert "class " in text

    def test_cross_region_transition_rejected_by_ns_and_sp(self):
        b = StateMachineBuilder("Cross")
        sub = b.composite("C")
        sub.state("Inner")
        sub.initial_to("Inner")
        b.state("Out")
        b.initial_to("C")
        b.transition("Inner", "Out", on="escape")  # crosses the boundary
        m = b.build()
        for gen_cls in (NestedSwitchGenerator, StatePatternGenerator):
            with pytest.raises(CodegenError):
                gen_cls().generate(m)

    def test_state_table_supports_cross_region_transitions(self):
        b = StateMachineBuilder("Cross")
        sub = b.composite("C", entry=calls("c_in"), exit=calls("c_out"))
        sub.state("Inner", entry=calls("inner_in"), exit=calls("inner_out"))
        sub.initial_to("Inner")
        b.state("Out", entry=calls("out_in"))
        b.initial_to("C")
        b.transition("Inner", "Out", on="escape")
        m = b.build()
        assert_differential(m, StateTableGenerator)

    def test_choice_pseudostate_rejected_everywhere(self):
        b = StateMachineBuilder("Ch")
        b.attribute("v", 0)
        b.state("A")
        b.state("B")
        ch = b.choice()
        b.initial_to("A")
        b.transition("A", ch, on="go")
        b.transition(ch, "B", guard="v > 0")
        b.transition(ch, "A")
        m = b.build()
        for gen_cls in ALL_GENERATORS:
            with pytest.raises(CodegenError):
                gen_cls().generate(m)
