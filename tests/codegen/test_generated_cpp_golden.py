"""Golden-shape tests on the printed C++ of each generator.

Not byte-for-byte golden files (those rot), but structural pins on the
paper-relevant features of each pattern's output.
"""

from repro.codegen import (NestedSwitchGenerator, StatePatternGenerator,
                           StateTableGenerator)
from repro.cpp import print_unit
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)


class TestNestedSwitchOutput:
    def test_outer_and_inner_switch(self):
        text = print_unit(NestedSwitchGenerator().generate(
            flat_machine_with_unreachable_state()))
        assert "switch (this->state)" in text
        assert "switch (ev)" in text

    def test_case_arm_per_state(self):
        text = print_unit(NestedSwitchGenerator().generate(
            flat_machine_with_unreachable_state()))
        for st in ("ST_S1", "ST_S2", "ST_S3", "ST_FINAL"):
            assert f"case {st}:" in text

    def test_composite_gets_submachine_class_and_field(self):
        text = print_unit(NestedSwitchGenerator().generate(
            hierarchical_machine_with_shadowed_composite()))
        assert "class Fig1Hier_S3 {" in text
        assert "Fig1Hier_S3* sub_S3;" in text
        assert "this->sub_S3->reset()" in text

    def test_inlined_actions_in_arms(self):
        text = print_unit(NestedSwitchGenerator().generate(
            flat_machine_with_unreachable_state()))
        # exit + effect + entry sequence inlined at the e1 arm
        assert "s1_exit_action()" in text
        assert "t_s1_s3_effect()" in text
        assert "s3_enter_action()" in text


class TestStatePatternOutput:
    def test_abstract_base_with_virtuals(self):
        text = print_unit(StatePatternGenerator().generate(
            flat_machine_with_unreachable_state()))
        assert "class Fig1Flat_State {" in text
        assert "virtual int handle(Fig1Flat* m, int ev)" in text
        assert "virtual void entry(Fig1Flat* m)" in text

    def test_one_singleton_per_state(self):
        text = print_unit(StatePatternGenerator().generate(
            flat_machine_with_unreachable_state()))
        for st in ("S1", "S2", "S3"):
            assert f"Fig1Flat_{st} g_Fig1Flat_{st};" in text

    def test_completion_override_present(self):
        text = print_unit(StatePatternGenerator().generate(
            hierarchical_machine_with_shadowed_composite()))
        assert "virtual int completion(Fig1Hier* m)" in text

    def test_submachine_cluster_for_composite(self):
        text = print_unit(StatePatternGenerator().generate(
            hierarchical_machine_with_shadowed_composite()))
        assert "class Fig1Hier_S3Sub_State" in text
        assert "class Fig1Hier_S3Sub_S31" in text


class TestStateTableOutput:
    def test_row_struct_and_const_table(self):
        text = print_unit(StateTableGenerator().generate(
            flat_machine_with_unreachable_state()))
        assert "class Fig1Flat_Row {" in text
        assert "const Fig1Flat_Row Fig1Flat_rows[" in text
        assert "const void (*Fig1Flat_actions[" in text

    def test_rows_reference_thunks_by_address(self):
        text = print_unit(StateTableGenerator().generate(
            flat_machine_with_unreachable_state()))
        assert "&Fig1Flat_beh_0" in text

    def test_flattened_state_enum(self):
        text = print_unit(StateTableGenerator().generate(
            hierarchical_machine_with_shadowed_composite()))
        assert "LS_S3_S31" in text  # leaf configuration naming

    def test_engine_scan_loop(self):
        text = print_unit(StateTableGenerator().generate(
            flat_machine_with_unreachable_state()))
        assert "int scan(int eid)" in text
        assert "run_actions" in text
