"""Tests for the region-flattening analysis."""

import pytest

from repro.codegen import CodegenError, flatten_machine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.uml import StateMachineBuilder, calls


class TestFlatMachines:
    def test_flat_machine_leaves(self):
        flat = flatten_machine(flat_machine_with_unreachable_state())
        names = {leaf.name for leaf in flat.leaves}
        assert names == {"S1", "S2", "S3", "final"}

    def test_top_final_identified(self):
        flat = flatten_machine(flat_machine_with_unreachable_state())
        assert flat.top_final_leaf is not None
        assert flat.leaves[flat.top_final_leaf].vertex_kind == "top-final"

    def test_initial_leaf_and_actions(self):
        flat = flatten_machine(flat_machine_with_unreachable_state())
        assert flat.leaves[flat.initial_leaf].name == "S1"
        # Initial entry runs S1's entry behavior.
        assert any("s1_enter_action" in str(b.statements)
                   for b in flat.initial_actions)

    def test_row_per_event_transition(self):
        flat = flatten_machine(flat_machine_with_unreachable_state())
        triggers = [(flat.leaves[t.source].name, t.trigger)
                    for t in flat.transitions]
        assert ("S1", "e1") in triggers
        assert ("S2", "e2") in triggers
        assert ("S3", "e3") in triggers and ("S3", "e4") in triggers


class TestHierarchicalFlattening:
    def test_leaf_configurations(self):
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        names = {leaf.name for leaf in flat.leaves}
        assert "S3.S31" in names and "S3.final" in names
        assert "S1" in names and "S2" in names

    def test_active_chain_recorded(self):
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        leaf = flat.leaf_by_name("S3.S31")
        assert leaf.active_states == ("S3", "S31")

    def test_bubbled_transition_duplicated_per_leaf(self):
        # S3 -e3-> S1 must be available from every S3-interior leaf.
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        e3_sources = {flat.leaves[t.source].name
                      for t in flat.transitions if t.trigger == "e3"}
        assert {"S3.S31", "S3.S32", "S3.S33", "S3.final"} <= e3_sources

    def test_exit_cascade_in_actions(self):
        # Leaving from S3.S31 via e3 must run S31.exit then S3.exit.
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        row = next(t for t in flat.transitions
                   if t.trigger == "e3"
                   and flat.leaves[t.source].name == "S3.S31")
        text = [str(b.statements) for b in row.actions]
        s31_exit = next(i for i, t in enumerate(text)
                        if "s31_exit_action" in t)
        s3_exit = next(i for i, t in enumerate(text)
                       if "s3_exit_action" in t)
        assert s31_exit < s3_exit

    def test_entry_cascade_in_actions(self):
        # Entering S3 (boundary) runs S3.entry, initial effect, S31.entry.
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        row = next(t for t in flat.transitions if t.trigger == "e2")
        text = [str(b.statements) for b in row.actions]
        s3_in = next(i for i, t in enumerate(text)
                     if "s3_enter_action" in t)
        s31_in = next(i for i, t in enumerate(text)
                      if "s31_enter_action" in t)
        assert s3_in < s31_in
        assert flat.leaves[row.target].name == "S3.S31"

    def test_completion_row_from_nested_final(self):
        # S3.final completes the composite; S3's completion transition
        # would be a row... the paper's model has none from S3, but S2
        # (simple) has one: a completion row with trigger None.
        flat = flatten_machine(
            hierarchical_machine_with_shadowed_composite())
        completion_rows = [t for t in flat.transitions if t.trigger is None]
        sources = {flat.leaves[t.source].name for t in completion_rows}
        assert "S2" in sources

    def test_internal_transition_row(self):
        b = StateMachineBuilder("I")
        b.state("A")
        b.initial_to("A")
        b.internal("A", on="tick", effect=calls("t"))
        b.transition("A", "final", on="stop")
        flat = flatten_machine(b.build())
        row = next(t for t in flat.transitions if t.trigger == "tick")
        assert row.internal
        assert row.source == row.target


class TestUnsupported:
    def test_choice_pseudostate_rejected(self):
        b = StateMachineBuilder("Ch")
        b.state("A")
        b.state("B")
        ch = b.choice()
        b.initial_to("A")
        b.transition("A", ch, on="go")
        b.transition(ch, "B")
        with pytest.raises(CodegenError):
            flatten_machine(b.build())

    def test_orthogonal_regions_rejected(self):
        from repro.uml import Region, State
        b = StateMachineBuilder("O")
        s = b.state("S")
        s.add_region(Region("r1"))
        s.add_region(Region("r2"))
        b.initial_to("S")
        with pytest.raises(CodegenError):
            flatten_machine(b.machine)
