"""Checked-in minimized corpus cases replay exactly as recorded.

Three fixtures under ``fixtures/``:

* ``injected_bug_1.json`` / ``injected_bug_2.json`` — minimized repros
  produced by a deterministic ``--inject-bug`` hunt (the model
  optimizer runs with the deliberately broken
  ``inject-drop-guarded-transitions`` pass): the oracle must flag
  exactly the ``model-opt`` executor, nothing else — in particular the
  compiled VM cells (which execute the *unoptimized* machine) must all
  agree with the reference.
* ``const_fold_pin.json`` — the real bug ``fuzz run --seed 0`` caught:
  ``const_fold`` folded impure ``x || true`` to ``true``, dropping
  observable guard calls from the optimized model.  Pinned with an
  empty expectation: it must now replay **clean**, and a regression
  would flip it back to a model-opt divergence.
"""

import json
import pathlib

import pytest

from repro.fuzz import FuzzCase, MODEL_OPT_EXECUTOR, OracleConfig
from repro.fuzz.corpus import entry_from_json, replay_entry
from repro.fuzz.oracle import DifferentialOracle

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
ALL = sorted(FIXTURES.glob("*.json"))


def _load(name):
    return entry_from_json((FIXTURES / name).read_text())


def test_three_fixtures_are_checked_in():
    assert len(ALL) == 3


@pytest.mark.fuzz
@pytest.mark.parametrize("path", ALL, ids=lambda p: p.stem)
def test_fixture_replays_exactly_as_recorded(path, memory_engine):
    entry = entry_from_json(path.read_text())
    outcome = replay_entry(
        entry, oracle=DifferentialOracle(engine=memory_engine))
    assert outcome.reproduces, outcome.summary()


@pytest.mark.fuzz
@pytest.mark.parametrize("name", ["injected_bug_1.json",
                                  "injected_bug_2.json"])
def test_injected_bug_fixtures_flag_exactly_model_opt(name,
                                                      memory_engine):
    entry = _load(name)
    assert entry["expect"] == [MODEL_OPT_EXECUTOR]
    config = OracleConfig.from_dict(entry["oracle"])
    assert config.inject_bug
    outcome = replay_entry(
        entry, oracle=DifferentialOracle(engine=memory_engine))
    # Exactly the recorded divergence: the broken model pass, on every
    # stimulus it was recorded on — and zero VM-cell divergences.
    assert outcome.observed == (MODEL_OPT_EXECUTOR,)
    assert all(d.executor == MODEL_OPT_EXECUTOR
               for d in outcome.result.divergences)

    # ... and with the bug NOT injected the same case is clean, so the
    # divergence is attributable to the planted pass alone.
    clean = OracleConfig.from_dict(entry["oracle"]).to_dict()
    clean["inject_bug"] = False
    clean_entry = dict(entry, oracle=clean, expect=[])
    clean_outcome = replay_entry(
        clean_entry, oracle=DifferentialOracle(engine=memory_engine))
    assert clean_outcome.reproduces, clean_outcome.summary()


@pytest.mark.fuzz
def test_injected_fixtures_are_minimal(memory_engine):
    """The acceptance bar: shrunk repros of the planted bug stay tiny
    (<= 6 states) and deterministic."""
    for name in ("injected_bug_1.json", "injected_bug_2.json"):
        entry = _load(name)
        case = FuzzCase.from_dict(entry["case"])
        assert sum(1 for _ in case.machine.all_states()) <= 6
        assert len(case.stimuli) == 1
        # Identity is content-derived: re-parsing yields the same id.
        assert case.case_id == entry["id"]


@pytest.mark.fuzz
def test_const_fold_pin_is_clean_and_keeps_guard_calls(memory_engine):
    entry = _load("const_fold_pin.json")
    assert entry["expect"] == []
    case = FuzzCase.from_dict(entry["case"])
    from repro.optim import optimize
    from repro.uml import called_functions
    optimized = optimize(case.machine).optimized
    calls = set()
    for tr in optimized.all_transitions():
        if tr.guard is not None:
            calls |= called_functions(tr.guard)
    # The impure disjunct survived optimization.
    assert {"motor", "sensor", "probe"} <= calls


def test_fixture_files_are_canonical_json():
    for path in ALL:
        text = path.read_text()
        entry = json.loads(text)
        assert text == json.dumps(entry, indent=2, sort_keys=True) + "\n"
