"""Generator properties: validity, determinism, feature coverage."""

import random

import pytest

from repro.fuzz import (DEFAULT_PROFILES, FuzzProfile, generate_case,
                        random_machine, random_stimulus)
from repro.fuzz.generate import _int_expr
from repro.semantics.runtime import ExecutionError, run_scenario
from repro.uml import called_functions, check_machine
from repro.uml.actions import CallExpr


def _profile(name):
    for profile in DEFAULT_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(name)


class TestRandomMachine:
    @pytest.mark.parametrize("profile", DEFAULT_PROFILES,
                             ids=lambda p: p.name)
    def test_always_validates(self, profile):
        for seed in range(40):
            case = generate_case(seed, profile)
            assert check_machine(case.machine) == []

    def test_deterministic_per_seed(self):
        profile = _profile("hierarchical")
        a = generate_case(1234, profile)
        b = generate_case(1234, profile)
        assert a.case_id == b.case_id
        assert a.stimuli == b.stimuli
        c = generate_case(1235, profile)
        assert c.case_id != a.case_id

    def test_feature_mix_is_reached(self):
        """Across a modest seed range, the fleet exercises the features
        the ISSUE names: composites, guards with calls, duplicates,
        dead structure, degenerate shapes, deep chords."""
        seen = set()
        for profile in DEFAULT_PROFILES:
            for seed in range(60):
                seen.update(generate_case(seed, profile).features)
        for wanted in ("composite", "guard", "guard-call",
                       "duplicate-transition", "dead-state",
                       "dead-region", "chord", "cross-region", "shadow",
                       "self-loop", "to-final", "internal",
                       "event-reuse"):
            assert wanted in seen, f"feature {wanted!r} never generated"
        assert any(f.startswith("degenerate:") for f in seen)

    def test_machines_mostly_executable(self):
        """The reference must be able to run the large majority of
        cases (rejections are allowed, silence is not)."""
        runnable = total = 0
        for profile in DEFAULT_PROFILES:
            for seed in range(25):
                case = generate_case(seed, profile)
                for stimulus in case.stimuli:
                    total += 1
                    try:
                        run_scenario(case.machine, stimulus.names)
                        runnable += 1
                    except ExecutionError:
                        pass
        assert runnable / total > 0.9

    def test_expressions_avoid_division(self):
        rng = random.Random(7)
        for _ in range(200):
            expr = _int_expr(rng, ("ax", "bx"), allow_call=True, depth=3)
            for node in expr.walk():
                op = getattr(node, "op", None)
                assert op not in ("/", "%")

    def test_guard_calls_only_known_operations(self):
        profile = _profile("guard-heavy")
        for seed in range(30):
            case = generate_case(seed, profile)
            ops = set(case.machine.context.operations)
            for tr in case.machine.all_transitions():
                if tr.guard is not None:
                    assert called_functions(tr.guard) <= ops


class TestRandomStimulus:
    def test_payloads_and_unknown_events(self):
        rng = random.Random(3)
        profile = FuzzProfile("t", p_unknown_event=0.5)
        alphabet = ("ev1", "ev2")
        names, payloads = set(), set()
        for _ in range(50):
            stimulus = random_stimulus(rng, alphabet, profile)
            names.update(stimulus.names)
            payloads.update(p for _, p in stimulus.events)
        assert any(n.startswith("zz") for n in names)
        assert names & set(alphabet)
        assert len(payloads) > 1

    def test_empty_alphabet_yields_unknown_only(self):
        rng = random.Random(4)
        profile = FuzzProfile("t")
        stimulus = random_stimulus(rng, (), profile, max_length=12)
        assert all(n.startswith("zz") for n in stimulus.names)
