"""Oracle behavior: agreement, rejection, divergence detection."""

import pytest

from repro.engine import ExperimentEngine
from repro.fuzz import (DifferentialOracle, FuzzCase, MODEL_OPT_EXECUTOR,
                        OracleConfig, Stimulus, generate_case)
from repro.fuzz.generate import DEFAULT_PROFILES
from repro.uml import Assign, Behavior, StateMachineBuilder, parse_expr


def _guarded_machine():
    """A machine whose guarded transition observably fires — the
    injected drop-guarded-transitions bug must diverge on it."""
    b = StateMachineBuilder("Guarded")
    b.attribute("v", 1)
    b.state("A")
    b.state("B", entry="b_entry")
    b.initial_to("A")
    b.transition("A", "B", on="go", guard="v > 0",
                 effect=Behavior(statements=(
                     Assign("v", parse_expr("v + 1")),)))
    b.transition("B", "A", on="back")
    return b.build()


def _case(machine, *event_names):
    return FuzzCase(machine=machine,
                    stimuli=(Stimulus.of(*event_names),))


@pytest.mark.fuzz
class TestOracleAgreement:
    def test_small_grid_agrees(self, memory_engine, flat_machine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",),
                                levels=("-O0", "-Os")))
        result = oracle.run_case(_case(flat_machine, "e1", "e3", "e4"))
        assert result.ok, result.summary()
        # model-opt + fleet + 2 VM cells
        assert result.executors_run == 4

    def test_hierarchical_agrees(self, memory_engine,
                                 hierarchical_machine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("nested-switch",),
                                targets=("rt16",), levels=("-Os",)))
        result = oracle.run_case(
            _case(hierarchical_machine, "e1", "e2", "e9"))
        assert result.ok, result.summary()

    def test_unknown_events_agree(self, memory_engine, flat_machine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",)))
        result = oracle.run_case(
            _case(flat_machine, "nope", "e1", "nope"))
        assert result.ok, result.summary()


@pytest.mark.fuzz
class TestOracleRejection:
    def test_undefined_reference_is_rejected_not_failed(self,
                                                        memory_engine):
        # An unguarded completion cycle blows the RTC step budget.
        b = StateMachineBuilder("Cycle")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.completion("A", "B")
        b.completion("B", "A")
        machine = b.build()
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",)))
        result = oracle.run_case(_case(machine))
        assert result.status == "rejected"
        assert "reference" in result.reject_reason

    def test_value_overflow_is_rejected(self, memory_engine):
        # Repeated tripling escapes the 32-bit agreement range: the
        # interpreter computes unbounded ints, the simulator wraps, so
        # the case is undefined rather than a divergence.
        b = StateMachineBuilder("Blowup")
        b.attribute("v", 7)
        b.state("A")
        b.initial_to("A")
        b.transition("A", "A", on="x",
                     effect=Behavior(statements=(
                         Assign("v", parse_expr("v * v")),)))
        machine = b.build()
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",)))
        result = oracle.run_case(_case(machine, *(["x"] * 6)))
        assert result.status == "rejected"
        assert "32-bit" in result.reject_reason

    def test_double_emit_is_rejected_not_diverged(self, memory_engine):
        # Two emits in one RTC step overflow the generated runtimes'
        # single-slot pending event; outside the fixed-code contract.
        from repro.uml import EmitStmt
        b = StateMachineBuilder("DoubleEmit")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go",
                     effect=Behavior(statements=(EmitStmt("ping"),
                                                 EmitStmt("ping"))))
        b.transition("B", "A", on="back")
        machine = b.build()
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("nested-switch",),
                                targets=("rt32",), levels=("-O0",)))
        result = oracle.run_case(_case(machine, "go", "go"))
        assert result.status == "rejected"
        assert "single-slot" in result.reject_reason

    def test_single_emit_cascades_are_executed(self, memory_engine):
        from repro.uml import EmitStmt
        b = StateMachineBuilder("SingleEmit")
        b.state("A")
        b.state("B", entry="b_entry")
        b.initial_to("A")
        b.transition("A", "B", on="go",
                     effect=Behavior(statements=(EmitStmt("back"),)))
        b.transition("B", "A", on="back", effect="ping")
        machine = b.build()
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32", "rt16"),
                                levels=("-Os",)))
        result = oracle.run_case(_case(machine, "go", "go"))
        assert result.ok, result.summary()

    def test_unsupported_pattern_cell_is_skipped(self, memory_engine):
        # Cross-region transition: flat-switch supports it,
        # nested-switch documents it as unsupported.
        b = StateMachineBuilder("Cross")
        b.state("A")
        comp = b.composite("C")
        comp.state("X")
        comp.initial_to("X")
        b.initial_to("A")
        b.transition("A", "X", on="deep")
        b.transition("C", "A", on="out")
        machine = b.build()
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("nested-switch",),
                                targets=("rt32",), levels=("-Os",),
                                check_optimized=False,
                                check_fleet=False))
        result = oracle.run_case(_case(machine, "deep", "out"))
        assert result.ok
        assert result.cells_skipped == 1
        assert result.executors_run == 0


@pytest.mark.fuzz
class TestInjectedBug:
    def test_injected_pass_diverges_and_is_attributed(self,
                                                      memory_engine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",),
                                inject_bug=True))
        result = oracle.run_case(_case(_guarded_machine(), "go", "back"))
        assert result.diverged
        assert result.divergent_executors() == (MODEL_OPT_EXECUTOR,)
        # The VM cells executed the *unoptimized* machine: no VM
        # divergence, the planted bug is purely a model-level one.
        assert all(d.executor == MODEL_OPT_EXECUTOR
                   for d in result.divergences)

    def test_clean_pipeline_on_same_case(self, memory_engine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",)))
        result = oracle.run_case(_case(_guarded_machine(), "go", "back"))
        assert result.ok, result.summary()


@pytest.mark.fuzz
def test_generated_cases_agree_on_small_grid(memory_engine):
    """A mini acceptance run: a handful of generated cases per profile
    across one cell per pattern family must be divergence-free."""
    configs = [OracleConfig(patterns=("flat-switch",),
                            targets=("rt32",), levels=("-O2",)),
               OracleConfig(patterns=("state-table",),
                            targets=("rt16",), levels=("-Os",))]
    for profile in DEFAULT_PROFILES:
        for seed in (11, 12):
            case = generate_case(seed, profile)
            for config in configs:
                oracle = DifferentialOracle(engine=memory_engine,
                                            config=config)
                result = oracle.run_case(case)
                assert not result.diverged, result.summary()


@pytest.mark.fuzz
def test_disk_engine_serves_warm_replay(disk_engine, any_target,
                                        flat_machine):
    """Observation runs are cached per fingerprint: replaying the same
    case through a disk-backed engine is served without recompiling."""
    config = OracleConfig(patterns=("flat-switch",),
                          targets=(any_target.name,), levels=("-Os",),
                          check_optimized=False)
    oracle = DifferentialOracle(engine=disk_engine, config=config)
    case = _case(flat_machine, "e1", "e3")
    first = oracle.run_case(case)
    assert first.ok
    misses_after_first = disk_engine.stats.misses
    second = oracle.run_case(case)
    assert second.ok
    assert disk_engine.stats.misses == misses_after_first
    assert disk_engine.stats.hits > 0


def test_narrowed_config_pins_exact_executors():
    config = OracleConfig()
    narrowed = config.narrowed_to(
        ("vm:flat-switch/-O2/rt16", MODEL_OPT_EXECUTOR))
    assert narrowed.check_optimized
    assert [(p, l.value, t) for p, l, t in narrowed.cells()] == \
        [("flat-switch", "-O2", "rt16")]
    # Two diverged cells narrow to exactly those two — NOT the 2x2x2
    # cross-product of their components.
    two = config.narrowed_to(("vm:flat-switch/-O0/rt32",
                              "vm:state-table/-Os/rt16"))
    assert not two.check_optimized
    assert sorted((p, l.value, t) for p, l, t in two.cells()) == \
        [("flat-switch", "-O0", "rt32"), ("state-table", "-Os", "rt16")]


def test_oracle_config_round_trips():
    config = OracleConfig(patterns=("state-pattern",),
                          targets=("rt16",), levels=("-O1",),
                          check_optimized=False, inject_bug=True,
                          model_selection=("simplify-guards",))
    assert OracleConfig.from_dict(config.to_dict()) == config
