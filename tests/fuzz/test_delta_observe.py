"""Fuzz oracle compiles go through the delta path — byte-identically.

A fuzz campaign is mutant chains: each case differs from its parent by
one model edit, so the per-unit cache serves most of every compile.
That is only sound if the delta path is byte-exact, which these tests
pin against the checked-in corpus fixtures (real shrunk machines, not
synthetic toys).
"""

import pathlib

import pytest

from repro.engine.cache import CompileCache
from repro.fuzz import FuzzCase
from repro.fuzz.corpus import entry_from_json
from repro.fuzz.observe import cached_vm_observations, observe_vm_many
from repro.vm.harness import CompiledProgram

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
ALL = sorted(FIXTURES.glob("*.json"))


def fixture_case(path) -> FuzzCase:
    return FuzzCase.from_dict(entry_from_json(path.read_text())["case"])


@pytest.mark.parametrize("path", ALL, ids=lambda p: p.stem)
def test_fixture_modules_full_vs_delta_byte_identical(path):
    case = fixture_case(path)
    full = CompiledProgram(case.machine, "flat-switch")
    delta = CompiledProgram(case.machine, "flat-switch",
                            unit_cache=CompileCache())
    assert delta.compile_result.module.listing() == \
        full.compile_result.module.listing()
    assert bytes(delta.image.text) == bytes(full.image.text)
    assert sorted(delta.image.initial_memory.items()) == \
        sorted(full.image.initial_memory.items())


def test_observations_identical_with_and_without_unit_cache():
    case = fixture_case(ALL[0])
    stimuli = tuple(s.events for s in case.stimuli) or \
        ((("e1", 0),),)
    plain = observe_vm_many(case.machine, stimuli)
    cache = CompileCache()
    cold = observe_vm_many(case.machine, stimuli, unit_cache=cache)
    warm = observe_vm_many(case.machine, stimuli, unit_cache=cache)
    assert cold == plain
    assert warm == plain
    assert cache.stats.hits > 0, "second compile must reuse units"


def test_oracle_path_uses_engine_unit_tier_by_default(memory_engine):
    case = fixture_case(ALL[0])
    stimuli = tuple(s.events for s in case.stimuli) or \
        ((("e1", 0),),)
    assert memory_engine.delta
    cached_vm_observations(memory_engine, case.machine, stimuli)
    assert memory_engine.units.stats.lookups > 0, \
        "delta-mode engine must compile observations per unit"


def test_oracle_path_respects_delta_off():
    from repro.engine import ExperimentEngine
    engine = ExperimentEngine(delta=False)
    case = fixture_case(ALL[0])
    stimuli = ((("e1", 0),),)
    cached_vm_observations(engine, case.machine, stimuli)
    assert engine.units.stats.lookups == 0
