"""Shrinker minimality/determinism and corpus persistence."""

import pytest

from repro.fuzz import (Corpus, DifferentialOracle, FuzzCase,
                        MODEL_OPT_EXECUTOR, OracleConfig, Stimulus,
                        shrink_case)
from repro.fuzz.corpus import entry_from_json, entry_to_json
from repro.uml import Assign, Behavior, StateMachineBuilder, parse_expr


def _noisy_guarded_machine():
    """A guarded transition that matters, buried in noise the shrinker
    should strip: extra states, transitions, behaviors."""
    b = StateMachineBuilder("Noisy")
    b.attribute("v", 1)
    b.state("A", entry="a_entry")
    b.state("B", entry="b_entry", exit="b_exit")
    b.state("C", entry="c_entry")
    b.state("D", entry="d_entry")
    b.initial_to("A")
    b.transition("A", "B", on="go", guard="v > 0",
                 effect=Behavior(statements=(
                     Assign("v", parse_expr("v + 1")),)))
    b.transition("B", "C", on="hop", effect="hop_effect")
    b.transition("C", "D", on="skip")
    b.transition("D", "A", on="wrap")
    b.transition("A", "C", on="jump")
    b.transition("C", "final", on="bye")
    return b.build()


def _inject_oracle(engine):
    return DifferentialOracle(
        engine=engine,
        config=OracleConfig(patterns=("flat-switch",),
                            targets=("rt32",), levels=("-Os",),
                            inject_bug=True))


@pytest.mark.fuzz
class TestShrink:
    def test_minimizes_machine_and_stimulus(self, memory_engine):
        oracle = _inject_oracle(memory_engine)
        case = FuzzCase(
            machine=_noisy_guarded_machine(),
            stimuli=(Stimulus.of("jump", "bye"),          # clean
                     Stimulus.of("go", "hop", "skip", "wrap", "jump")))
        result = oracle.run_case(case)
        assert result.diverged
        report = shrink_case(case, result, oracle)
        minimized = report.minimized
        n_states = sum(1 for _ in minimized.machine.all_states())
        n_events = sum(len(s) for s in minimized.stimuli)
        assert n_states <= 2          # A and B are all the bug needs
        assert len(minimized.stimuli) == 1
        assert n_events == 1          # just "go"
        assert report.result.diverged
        assert report.result.divergent_executors() == \
            (MODEL_OPT_EXECUTOR,)
        # Event declarations not used by any surviving transition were
        # swept; surviving transitions keep only load-bearing guards
        # (the witness guard itself must survive — without it the
        # planted drop-guarded-transitions pass has nothing to drop).
        used = {trig.name for tr in minimized.machine.all_transitions()
                for trig in tr.triggers}
        declared = {e.name for e in minimized.machine.events.values()}
        assert declared <= used
        assert any(tr.guard is not None
                   for tr in minimized.machine.all_transitions())

    def test_shrink_is_deterministic(self, memory_engine):
        oracle = _inject_oracle(memory_engine)
        case = FuzzCase(machine=_noisy_guarded_machine(),
                        stimuli=(Stimulus.of("go", "hop", "go"),))
        result = oracle.run_case(case)
        first = shrink_case(case, result, oracle).minimized
        second = shrink_case(case, result, oracle).minimized
        assert first.case_id == second.case_id


@pytest.mark.fuzz
class TestCorpus:
    def test_persist_replay_export_import(self, tmp_path, memory_engine):
        oracle = _inject_oracle(memory_engine)
        case = FuzzCase(machine=_noisy_guarded_machine(),
                        stimuli=(Stimulus.of("go",),))
        result = oracle.run_case(case)
        assert result.diverged

        corpus = Corpus(tmp_path / "corpus")
        case_id = corpus.add(case, oracle.config,
                             expect=result.divergent_executors(),
                             note="test entry")
        assert corpus.ids() == [case_id]

        outcome = corpus.replay(case_id, oracle=oracle)
        assert outcome.reproduces, outcome.summary()

        exported = tmp_path / "entry.json"
        corpus.export_file(case_id, exported)
        round_tripped = entry_from_json(exported.read_text())
        assert round_tripped["id"] == case_id
        assert entry_to_json(round_tripped) == \
            entry_to_json(corpus.get(case_id))

        other = Corpus(tmp_path / "other")
        assert other.import_file(exported) == case_id
        assert other.ids() == [case_id]

    def test_replay_flags_vanished_divergence(self, tmp_path,
                                              memory_engine):
        """An entry whose expectation no longer matches must not
        silently pass — that is how fixed bugs are noticed."""
        case = FuzzCase(machine=_noisy_guarded_machine(),
                        stimuli=(Stimulus.of("go",),))
        corpus = Corpus(tmp_path / "corpus")
        clean_config = OracleConfig(patterns=("flat-switch",),
                                    targets=("rt32",), levels=("-Os",))
        # Recorded as diverging, but replayed under the *clean*
        # pipeline: nothing diverges, so it must not "reproduce".
        case_id = corpus.add(case, clean_config,
                             expect=(MODEL_OPT_EXECUTOR,))
        outcome = corpus.replay(
            case_id,
            oracle=DifferentialOracle(engine=memory_engine,
                                      config=clean_config))
        assert not outcome.reproduces
        assert outcome.observed == ()

    def test_clean_pin_does_not_pass_vacuously_when_rejected(
            self, tmp_path, memory_engine):
        """A clean-expectation entry whose reference run is *rejected*
        has zero divergences too — it must still not 'reproduce'."""
        from repro.uml import EmitStmt
        b = StateMachineBuilder("Storm")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "A", on="go",
                     effect=Behavior(statements=(EmitStmt("x"),
                                                 EmitStmt("x"))))
        case = FuzzCase(machine=b.build(),
                        stimuli=(Stimulus.of("go",),))
        corpus = Corpus(tmp_path / "corpus")
        config = OracleConfig(patterns=("flat-switch",),
                              targets=("rt32",), levels=("-Os",))
        case_id = corpus.add(case, config, expect=())
        outcome = corpus.replay(
            case_id, oracle=DifferentialOracle(engine=memory_engine,
                                               config=config))
        assert outcome.result.status == "rejected"
        assert not outcome.reproduces
