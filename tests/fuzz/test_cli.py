"""CLI smoke: run / corpus / replay / shrink round-trip, exit codes."""

import pathlib

import pytest

from repro.fuzz.__main__ import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _run(argv):
    return main(argv)


@pytest.mark.fuzz
class TestRunCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = _run(["run", "--cases", "6", "--seed", "3",
                     "--corpus-dir", str(tmp_path / "corpus"),
                     "--progress-every", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 diverged" in out

    def test_inject_bug_exits_one_and_persists(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        code = _run(["run", "--cases", "12", "--seed", "7",
                     "--inject-bug", "--max-shrink", "1",
                     "--patterns", "flat-switch",
                     "--targets", "rt32", "--levels=-Os",
                     "--corpus-dir", corpus_dir,
                     "--progress-every", "100"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGENCE" in out
        # ... and the minimized repro replays deterministically.
        code = _run(["replay", "--corpus-dir", corpus_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduces" in out

    def test_unknown_target_is_usage_error(self, tmp_path):
        code = _run(["run", "--cases", "1",
                     "--targets", "does-not-exist",
                     "--corpus-dir", str(tmp_path / "c")])
        assert code == 2


@pytest.mark.fuzz
class TestCorpusAndReplay:
    def test_replay_fixture_file(self, tmp_path, capsys):
        fixture = FIXTURES / "injected_bug_1.json"
        code = _run(["replay", "--file", str(fixture),
                     "--corpus-dir", str(tmp_path / "empty")])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduces" in out

    def test_corpus_list_show_export(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        _run(["run", "--cases", "12", "--seed", "7", "--inject-bug",
              "--max-shrink", "1", "--patterns", "flat-switch",
              "--targets", "rt32", "--levels=-Os",
              "--corpus-dir", corpus_dir, "--progress-every", "100"])
        capsys.readouterr()
        assert _run(["corpus", "--corpus-dir", corpus_dir]) == 0
        listing = capsys.readouterr().out.strip().splitlines()
        assert listing
        case_id = listing[0].split()[0]
        assert _run(["corpus", "--corpus-dir", corpus_dir,
                     "--show", case_id]) == 0
        assert case_id in capsys.readouterr().out
        exported = tmp_path / "out.json"
        assert _run(["corpus", "--corpus-dir", corpus_dir, "--export",
                     case_id, str(exported)]) == 0
        assert exported.exists()

    def test_empty_corpus_replay_is_usage_error(self, tmp_path, capsys):
        code = _run(["replay", "--corpus-dir", str(tmp_path / "none")])
        capsys.readouterr()
        assert code == 2

    def test_shrink_command_reshrinks_entry(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        _run(["run", "--cases", "12", "--seed", "7", "--inject-bug",
              "--max-shrink", "1", "--patterns", "flat-switch",
              "--targets", "rt32", "--levels=-Os",
              "--corpus-dir", corpus_dir, "--progress-every", "100"])
        capsys.readouterr()
        _run(["corpus", "--corpus-dir", corpus_dir])
        case_id = capsys.readouterr().out.split()[0]
        code = _run(["shrink", case_id, "--corpus-dir", corpus_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "shrink" in out and "stored" in out
