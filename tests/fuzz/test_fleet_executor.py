"""The fleet as the oracle's fourth executor."""

import pytest

from repro.fuzz.case import FuzzCase, Stimulus
from repro.fuzz.observe import (UNSUPPORTED_PREFIX, observe_fleet_many,
                                observe_interpreter_many)
from repro.fuzz.oracle import (FLEET_EXECUTOR, DifferentialOracle,
                               OracleConfig)
from repro.semantics.variation import (ConflictPolicy,
                                       UML_DEFAULT_SEMANTICS)
from repro.uml import StateMachineBuilder


def _case(machine, *events):
    return FuzzCase(machine=machine,
                    stimuli=(Stimulus(tuple((e, 0) for e in events)),))


class TestObserveFleetMany:
    def test_agrees_with_interpreter(self, flat_machine):
        stimuli = [[("e1", 0), ("e4", 0)], [("e3", 0)]]
        fleet = observe_fleet_many(flat_machine, stimuli)
        interp = observe_interpreter_many(flat_machine, stimuli)
        assert len(fleet) == len(interp) == 2
        for f, i in zip(fleet, interp):
            assert i.matches(f), i.first_difference(f)

    def test_unsupported_shape_marked_not_raised(self, flat_machine):
        variant = UML_DEFAULT_SEMANTICS.with_(
            conflict_resolution=ConflictPolicy.OUTERMOST_FIRST)
        observations = observe_fleet_many(flat_machine, [[("e1", 0)]],
                                          semantics=variant)
        assert all(o.unsupported for o in observations)
        assert observations[0].error.startswith(UNSUPPORTED_PREFIX)


@pytest.mark.fuzz
class TestFleetInOracle:
    def test_fleet_runs_by_default_and_agrees(self, memory_engine,
                                              flat_machine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",),
                                check_optimized=False))
        result = oracle.run_case(_case(flat_machine, "e1", "e3", "e4"))
        assert result.ok, result.summary()
        assert result.executors_run == 2   # fleet + 1 VM cell

    def test_check_fleet_false_excludes_it(self, memory_engine,
                                           flat_machine):
        oracle = DifferentialOracle(
            engine=memory_engine,
            config=OracleConfig(patterns=("flat-switch",),
                                targets=("rt32",), levels=("-Os",),
                                check_optimized=False,
                                check_fleet=False))
        result = oracle.run_case(_case(flat_machine, "e1"))
        assert result.executors_run == 1

    def test_narrowed_to_fleet_reruns_only_fleet(self, memory_engine,
                                                 flat_machine):
        config = OracleConfig(patterns=("flat-switch",),
                              targets=("rt32",), levels=("-Os",))
        narrowed = config.narrowed_to([FLEET_EXECUTOR])
        assert narrowed.check_fleet
        assert not narrowed.check_optimized
        assert narrowed.cells() == []
        oracle = DifferentialOracle(engine=memory_engine, config=narrowed)
        result = oracle.run_case(_case(flat_machine, "e1", "e4"))
        assert result.ok
        assert result.executors_run == 1


class TestConfigRoundTrip:
    def test_to_dict_carries_check_fleet(self):
        config = OracleConfig(check_fleet=True)
        assert OracleConfig.from_dict(config.to_dict()).check_fleet

    def test_from_dict_defaults_false_for_old_fixtures(self):
        # A corpus entry recorded before the fleet existed must replay
        # with its exact original executor set.
        data = OracleConfig().to_dict()
        del data["check_fleet"]
        assert OracleConfig.from_dict(data).check_fleet is False
