"""Shared fixtures for the whole test tree.

Fixtures here cover the three things almost every subsystem's tests
set up by hand: a temporary artifact store, the registered targets,
and a couple of small well-understood machines (the paper's Fig. 1
shapes).  Individual test modules keep their own specialized builders;
these are the common denominators.

The ``slow`` and ``fuzz`` markers are registered in ``pyproject.toml``;
``fuzz``-marked tests run real multi-cell differential fuzzing and are
kept small enough for tier-1, but the marker lets a developer
``-m "not fuzz"`` while iterating on an unrelated layer.
"""

from __future__ import annotations

import pytest

from repro.compiler.target import get_target
from repro.engine import ExperimentEngine
from repro.store import ArtifactStore
from repro.uml import StateMachineBuilder


@pytest.fixture
def tmp_store(tmp_path):
    """A fresh on-disk :class:`ArtifactStore` under pytest's tmp dir."""
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def memory_engine():
    """A private in-memory :class:`ExperimentEngine` (no disk)."""
    return ExperimentEngine()


@pytest.fixture
def disk_engine(tmp_path):
    """An engine persisting to a tmp ``--cache-dir`` style store."""
    return ExperimentEngine(cache_dir=str(tmp_path / "cache"))


@pytest.fixture(params=["rt32", "rt16"])
def any_target(request):
    """Each registered backend target, by name."""
    return get_target(request.param)


@pytest.fixture
def rt32():
    return get_target("rt32")


@pytest.fixture
def flat_machine():
    """The paper's Fig. 1 flat shape: S2 is unreachable."""
    b = StateMachineBuilder("Fig1Flat")
    b.state("S1", entry="s1_entry")
    b.state("S2", entry="s2_entry")
    b.state("S3", entry="s3_entry")
    b.initial_to("S1")
    b.transition("S1", "S3", on="e1")
    b.transition("S3", "S1", on="e3")
    b.transition("S2", "S3", on="e2")
    b.transition("S3", "final", on="e4")
    return b.build()


@pytest.fixture
def hierarchical_machine():
    """The Fig. 1 hierarchical shape: an unguarded completion shadows
    the event transition into the composite, killing it."""
    b = StateMachineBuilder("Fig1Hier")
    b.attribute("mode", 0)
    b.state("S1", entry="s1_entry")
    comp = b.composite("S3", entry="s3_entry")
    comp.state("S31", entry="s31_entry")
    comp.state("S32", entry="s32_entry")
    comp.initial_to("S31")
    comp.transition("S31", "S32", on="e31")
    b.state("S2", entry="s2_entry")
    b.initial_to("S1")
    b.transition("S1", "S3", on="e1")      # shadowed by the completion
    b.completion("S1", "S2")
    b.transition("S2", "final", on="e2")
    b.transition("S3", "final", on="e9")
    return b.build()
