"""Workload generator: spec fidelity and determinism.

Regression tests for two generator bugs: ``guarded_fraction`` used to be
sampled only for live-core edges (dead-state and composite transitions
were never guarded), and ring chords could emit self-loops or duplicate
an existing edge.
"""

import dataclasses

import pytest

from repro.engine import machine_fingerprint
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.uml import validate_machine
from repro.uml.serialize import dumps_machine
from repro.uml.statemachine import State

FULL_SPEC = WorkloadSpec(n_live=5, n_dead=3, n_shadowed_composites=2,
                         composite_width=3, events_per_state=3)


def _event_transitions(machine):
    return [t for region in machine.all_regions()
            for t in region.transitions if t.triggers]


def _completion_transitions(machine):
    return [t for region in machine.all_regions()
            for t in region.transitions
            if not t.triggers and isinstance(t.source, State)]


class TestGuardedFraction:
    def test_zero_fraction_means_no_guards(self):
        machine = generate_machine(FULL_SPEC)
        assert all(t.guard is None for t in _event_transitions(machine))

    def test_full_fraction_guards_every_event_transition(self):
        machine = generate_machine(
            dataclasses.replace(FULL_SPEC, guarded_fraction=1.0))
        transitions = _event_transitions(machine)
        assert transitions
        unguarded = [t for t in transitions if t.guard is None]
        assert unguarded == []

    def test_guards_reach_dead_states_and_composites(self):
        """The old generator never guarded these transition classes."""
        spec = WorkloadSpec(n_live=4, n_dead=2, n_shadowed_composites=1,
                            composite_width=2, guarded_fraction=1.0)
        machine = generate_machine(spec)
        dead_out = [t for t in _event_transitions(machine)
                    if t.source.name.startswith("D")]
        assert dead_out and all(t.guard is not None for t in dead_out)
        inner = [t for t in _event_transitions(machine)
                 if t.source.name.startswith("C0S")]
        assert inner and all(t.guard is not None for t in inner)

    def test_completion_transitions_stay_unguarded(self):
        """The shadowing pathology requires an unguarded completion."""
        spec = WorkloadSpec(n_live=4, n_shadowed_composites=2,
                            guarded_fraction=1.0)
        machine = generate_machine(spec)
        completions = _completion_transitions(machine)
        assert completions
        assert all(t.guard is None for t in completions)


class TestChords:
    @pytest.mark.parametrize("seed", [0, 1, 7, 0xBEEF, 12345])
    def test_no_self_loops_no_duplicate_edges(self, seed):
        spec = WorkloadSpec(n_live=6, events_per_state=4, seed=seed)
        machine = generate_machine(spec)
        live_edges = [(t.source.name, t.target.name)
                      for t in _event_transitions(machine)
                      if t.source.name.startswith("L")
                      and t.target.name.startswith("L")]
        assert all(src != dst for src, dst in live_edges)
        assert len(live_edges) == len(set(live_edges))

    def test_spec_exceeding_fanout_still_honors_event_count(self):
        # events_per_state larger than the distinct non-self targets:
        # targets are reused (distinct events), never self-looped, and
        # the requested outgoing-edge count is still honored.
        spec = WorkloadSpec(n_live=2, events_per_state=5)
        machine = validate_machine(generate_machine(spec))
        for state_name in ("L0", "L1"):
            outgoing = [t for t in _event_transitions(machine)
                        if t.source.name == state_name]
            assert len(outgoing) >= spec.events_per_state
            assert all(t.target.name != state_name for t in outgoing)


class TestDeterminism:
    @pytest.mark.parametrize("spec", [
        WorkloadSpec(seed=42),
        FULL_SPEC,
        WorkloadSpec(n_live=5, n_dead=2, guarded_fraction=0.5, seed=7),
    ], ids=["default", "full", "guarded"])
    def test_same_seed_same_machine(self, spec):
        assert dumps_machine(generate_machine(spec)) == \
            dumps_machine(generate_machine(spec))
        assert machine_fingerprint(generate_machine(spec)) == \
            machine_fingerprint(generate_machine(spec))

    def test_different_seed_different_machine(self):
        base = WorkloadSpec(n_live=6, guarded_fraction=0.5,
                            events_per_state=3, seed=1)
        other = WorkloadSpec(n_live=6, guarded_fraction=0.5,
                             events_per_state=3, seed=2)
        assert machine_fingerprint(generate_machine(base)) != \
            machine_fingerprint(generate_machine(other))

    def test_generated_machines_validate(self):
        validate_machine(generate_machine(FULL_SPEC))
