"""Tests for the experiment harnesses and the workload generator."""

import pytest

from repro.analysis import find_dead_code, measure_model
from repro.experiments.figure1 import run_figure1
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import PAPER_TABLE2, run_table2
from repro.experiments.sweeps import (opt_level_sweep, pass_ablation,
                                      unreachable_sweep)
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.optim import check_equivalence, optimize
from repro.uml import validate_machine


class TestWorkloadGenerator:
    def test_generated_machine_validates(self):
        machine = generate_machine(WorkloadSpec(n_live=5, n_dead=2,
                                                n_shadowed_composites=1))
        validate_machine(machine)

    def test_deterministic_in_seed(self):
        from repro.uml import dumps_machine
        a = generate_machine(WorkloadSpec(seed=42))
        b = generate_machine(WorkloadSpec(seed=42))
        assert dumps_machine(a) == dumps_machine(b)

    def test_dead_state_count(self):
        spec = WorkloadSpec(n_live=4, n_dead=3)
        report = find_dead_code(generate_machine(spec))
        flat_dead = [d for d in report.dead_states if not d.is_composite]
        assert len(flat_dead) == 3

    def test_shadowed_composites_detected(self):
        spec = WorkloadSpec(n_live=4, n_shadowed_composites=2,
                            composite_width=2)
        report = find_dead_code(generate_machine(spec))
        composites = [d for d in report.dead_states if d.is_composite]
        assert len(composites) == 2
        assert all(d.nested_state_count == 2 for d in composites)

    def test_clean_spec_produces_clean_machine(self):
        report = find_dead_code(generate_machine(WorkloadSpec(n_live=6)))
        assert report.is_clean

    def test_metrics_scale_with_spec(self):
        small = measure_model(generate_machine(WorkloadSpec(n_live=4)))
        large = measure_model(generate_machine(WorkloadSpec(n_live=12)))
        assert large.total_states > small.total_states
        assert large.transitions > small.transitions

    def test_optimizer_is_behavior_preserving_on_workloads(self):
        for seed in (1, 2, 3):
            machine = generate_machine(WorkloadSpec(
                n_live=4, n_dead=1, n_shadowed_composites=1, seed=seed))
            report = optimize(machine)
            eq = check_equivalence(machine, report.optimized,
                                   exhaustive_depth=1, n_random=10)
            assert eq.equivalent, f"seed {seed}: {eq.summary()}"


class TestFigure1Harness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure1()

    def test_two_rows(self, rows):
        assert len(rows) == 2

    def test_flat_row_shape(self, rows):
        flat = rows[0]
        assert flat.size_after < flat.size_before
        assert flat.dce_kept_dead_code
        assert flat.behavior_preserved

    def test_hierarchical_gain_exceeds_paper_threshold(self, rows):
        assert rows[1].gain_percent > 45.0


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.pattern: r for r in run_table1()}

    def test_three_patterns(self, rows):
        assert set(rows) == set(PAPER_TABLE1)

    def test_gain_order(self, rows):
        assert rows["state-table"].gain_percent < \
            rows["nested-switch"].gain_percent

    def test_all_behavior_preserved(self, rows):
        assert all(r.behavior_preserved for r in rows.values())


class TestTable2Harness:
    def test_matrix_matches_paper(self):
        for row in run_table2(with_evidence=False):
            assert row.values == PAPER_TABLE2[row.alternative]


class TestSweeps:
    def test_unreachable_sweep_monotone(self):
        points = unreachable_sweep(dead_counts=(0, 2, 4))
        gains = [p.gain_percent for p in points]
        assert gains == sorted(gains)

    def test_pass_ablation_ends_at_full_pipeline_size(self):
        points = pass_ablation()
        assert points[-1].size_after <= points[0].size_after

    def test_opt_levels_cover_all_four(self):
        labels = {p.label for p in opt_level_sweep()}
        assert labels == {"-O0", "-O1", "-O2", "-Os"}
