"""`python -m repro.experiments --cache-dir`: the acceptance scenario.

A warm rerun of the full experiment suite against a shared cache
directory must be served (>=90 %) from disk with byte-identical
output.  Run in-process so the engine statistics are inspectable.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments import __main__ as cli


@pytest.fixture()
def capture_engines(monkeypatch):
    engines = []
    original = ExperimentEngine

    def tracking(*args, **kwargs):
        engine = original(*args, **kwargs)
        engines.append(engine)
        return engine

    monkeypatch.setattr(cli, "ExperimentEngine", tracking)
    return engines


def _run(capsys, *argv):
    assert cli.main(list(argv)) == 0
    return capsys.readouterr().out


def test_warm_rerun_is_disk_served_and_byte_identical(tmp_path, capsys,
                                                      capture_engines):
    cache_dir = str(tmp_path / "cache")
    cold_out = _run(capsys, "--cache-dir", cache_dir)
    warm_out = _run(capsys, "--cache-dir", cache_dir)
    assert warm_out == cold_out, "cold and warm output must be identical"

    cold, warm = capture_engines
    assert cold.stats.misses > 0
    assert warm.stats.misses == 0, "warm run recompiled something"
    # >= 90 % of the warm run's unique work (first-touch lookups) came
    # from disk; the rest of its hits are in-process repeats.
    first_touch = warm.stats.disk_hits + warm.stats.misses
    assert first_touch > 0
    assert warm.stats.disk_hits / first_touch >= 0.9
    assert warm.stats.disk_hits == cold.stats.misses
    assert warm.stats.lookups == cold.stats.lookups


def test_cache_dir_output_matches_memory_only_run(tmp_path, capsys):
    plain = _run(capsys)
    cached = _run(capsys, "--cache-dir", str(tmp_path / "cache"))
    assert cached == plain
