"""Encoder/decoder round-trips: TargetDescription and the VM cannot drift.

Every mnemonic either target declares must encode into exactly its
declared byte size and decode back to the identical instruction — the
invariant that keeps the simulator executing precisely what the size
accounting measures.  A whole-module round trip then pins the same
property on real compiler output for every pattern and both targets.
"""

import pytest

from repro.compiler import OptLevel
from repro.compiler.rtl.ir import RInstr
from repro.compiler.target import get_target
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.pipeline import compile_machine
from repro.vm import EncodingError, OperandPool, TargetEncoding, assemble
from repro.vm.encoding import operand_key

TARGETS = ["rt32", "rt16"]


def _representative(op: str, target) -> RInstr:
    """A plausible instruction for *op* using the target's own registers
    and immediate ranges."""
    r = list(target.allocatable_regs)
    imm = min(7, target.small_imm_max)
    if op in ("mv",):
        return RInstr(op, defs=(r[0],), uses=(r[1],))
    if op == "argmv":
        return RInstr(op, uses=(r[0],), imm=1)
    if op == "retmv":
        return RInstr(op, defs=(r[0],))
    if op in ("li", "li32"):
        value = imm if op == "li" else target.imm16_max + 1
        return RInstr(op, defs=(r[0],), imm=value)
    if op == "la":
        return RInstr(op, defs=(r[0],), symbol="some_global", imm=8)
    if op in ("add", "sub", "mul", "div", "mod"):
        return RInstr(op, defs=(r[0],), uses=(r[1], r[2]))
    if op == "neg":
        return RInstr(op, defs=(r[0],), uses=(r[1],))
    if op == "addi":
        return RInstr(op, defs=(r[0],), uses=(r[1],), imm=imm)
    if op.startswith("set"):
        if op.endswith("i"):
            return RInstr(op, defs=(r[0],), uses=(r[1],), imm=imm)
        return RInstr(op, defs=(r[0],), uses=(r[1], r[2]))
    if op == "lw":
        return RInstr(op, defs=(r[0],), uses=("sp",), imm=4)
    if op == "sw":
        return RInstr(op, uses=(r[0], "sp"), imm=4)
    if op == "lwg":
        return RInstr(op, defs=(r[0],), symbol="some_global", imm=0)
    if op == "swg":
        return RInstr(op, uses=(r[0],), symbol="some_global", imm=4)
    if op == "b":
        return RInstr(op, target=".fn.exit")
    if op in ("bnez", "beqz"):
        return RInstr(op, uses=(r[0],), target=".fn.exit")
    if op == "jt":
        return RInstr(op, uses=(r[0],), imm=0, symbol="fn.jt0",
                      target=".fn.default",
                      table=(".fn.case0", ".fn.case1", ".fn.case2"))
    if op.startswith("b") and op[1:3] in ("eq", "ne", "lt", "le", "gt",
                                          "ge"):
        if op.endswith("i"):
            return RInstr(op, uses=(r[0],), imm=imm, target=".fn.exit")
        return RInstr(op, uses=(r[0], r[1]), target=".fn.exit")
    if op == "call":
        return RInstr(op, symbol="Cls::method")
    if op == "callr":
        return RInstr(op, uses=(r[0],))
    if op == "ret":
        return RInstr(op)
    if op == "push":
        return RInstr(op, uses=(r[0],))
    if op == "pop":
        return RInstr(op, defs=(r[0],))
    if op == "addsp":
        return RInstr(op, imm=-8)
    raise AssertionError(f"no representative for mnemonic {op!r}")


@pytest.mark.parametrize("target_name", TARGETS)
def test_every_mnemonic_round_trips(target_name):
    target = get_target(target_name)
    encoding = TargetEncoding(target)
    pool = OperandPool()
    for op in target.insn_sizes:
        if op == "label":
            continue
        original = _representative(op, target)
        data = encoding.encode(original, pool, context=op)
        assert len(data) == target.insn_size(op), op
        decoded, size = encoding.decode(data, 0, pool)
        assert size == len(data), op
        assert decoded.op == op
        assert operand_key(decoded) == operand_key(original), op
        # Re-encoding the decoded instruction is byte-identical.
        assert encoding.encode(decoded, pool, context=op) == data, op


@pytest.mark.parametrize("target_name", TARGETS)
def test_opcode_table_derives_from_target(target_name):
    target = get_target(target_name)
    encoding = TargetEncoding(target)
    assert set(encoding.mnemonics) == set(target.insn_sizes) - {"label"}
    assert encoding.mnemonics == tuple(sorted(encoding.mnemonics))
    # Register numbering covers the whole file plus sp/lr, nothing else.
    assert set(encoding.reg_names) == (set(target.allocatable_regs)
                                       | set(target.scratch_regs)
                                       | {"sp", "lr"})


@pytest.mark.parametrize("target_name", TARGETS)
@pytest.mark.parametrize("pattern", ["nested-switch", "state-table",
                                     "state-pattern", "flat-switch"])
def test_module_round_trip_is_exact(target_name, pattern):
    """Assembling real compiler output re-decodes to the same stream and
    occupies exactly the accounted text bytes."""
    machine = hierarchical_machine_with_shadowed_composite()
    module = compile_machine(machine, pattern, OptLevel.OS,
                             target=target_name).module
    image = assemble(module)
    assert len(image.text) == module.text_size
    for fn in module.functions:
        addr = image.func_entry[fn.name]
        for instr in fn.instrs:
            if instr.op == "label":
                assert image.label_addr[instr.target] == addr
                continue
            decoded, size, owner = image.at(addr)
            assert owner == fn.name
            assert decoded.op == instr.op
            assert operand_key(decoded) == operand_key(instr)
            addr += size


def test_unknown_register_and_mnemonic_are_rejected():
    target = get_target("rt16")
    encoding = TargetEncoding(target)
    pool = OperandPool()
    with pytest.raises(EncodingError):
        encoding.encode(RInstr("mv", defs=("v0",), uses=("s1",)), pool)
    with pytest.raises(EncodingError):
        encoding.encode(RInstr("frobnicate", defs=("s0",)), pool)
    # rt16 has no s9: a register valid on rt32 only must not encode.
    with pytest.raises(EncodingError):
        encoding.encode(RInstr("mv", defs=("s9",), uses=("s1",)), pool)


def test_pool_overflow_is_loud():
    target = get_target("rt16")
    encoding = TargetEncoding(target)
    pool = OperandPool()
    capacity = encoding.pool_capacity("b")   # 2-byte insn -> 256 targets
    for i in range(capacity):
        encoding.encode(RInstr("b", target=f".fn.L{i}"), pool)
    with pytest.raises(EncodingError, match="operand pool overflow"):
        encoding.encode(RInstr("b", target=".fn.one_too_many"), pool)
