"""Trace-level conformance: executed code equals the interpreter.

The acceptance grid: every codegen pattern x {-O0, -Os} x {rt32, rt16}
on generator workloads must produce a VM-executed trace observationally
equal to the reference interpreter's on every scenario.
"""

import pytest

from repro.compiler import OptLevel
from repro.engine import ExperimentEngine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.optim import check_codegen_conformance, optimize
from repro.vm import check_vm_conformance, conformance_scenarios

PATTERNS = ["nested-switch", "state-table", "state-pattern", "flat-switch"]
LEVELS = [OptLevel.O0, OptLevel.OS]
TARGETS = ["rt32", "rt16"]

WORKLOADS = [
    WorkloadSpec(n_live=4, n_dead=1, events_per_state=2, seed=11,
                 name="ConfFlat"),
    WorkloadSpec(n_live=3, n_shadowed_composites=1, composite_width=2,
                 guarded_fraction=0.4, seed=23, name="ConfHier"),
]


@pytest.fixture(scope="module", params=[s.name for s in WORKLOADS])
def workload(request):
    spec = next(s for s in WORKLOADS if s.name == request.param)
    return generate_machine(spec)


@pytest.fixture(scope="module")
def scenarios_of():
    cache = {}

    def get(machine):
        if machine.name not in cache:
            cache[machine.name] = conformance_scenarios(
                machine, exhaustive_depth=1, n_random=6, random_length=8)
        return cache[machine.name]

    return get


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.value)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_conformance_grid_on_workloads(workload, pattern, level, target,
                                       scenarios_of):
    report = check_vm_conformance(workload, pattern=pattern, level=level,
                                  target=target,
                                  scenarios=scenarios_of(workload))
    assert report.conformant, report.summary()
    assert report.scenarios_run == len(scenarios_of(workload))
    assert report.events_dispatched > 0
    assert report.cycles_per_event > 0


def test_paper_models_conform_at_full_depth():
    for machine in (flat_machine_with_unreachable_state(),
                    hierarchical_machine_with_shadowed_composite()):
        report = check_vm_conformance(machine)
        assert report.conformant, report.summary()


def test_optimized_model_still_conforms():
    """Model optimization + compilation + execution, end to end: the
    paper's two-step pipeline preserves behavior down to the metal."""
    machine = hierarchical_machine_with_shadowed_composite()
    optimized = optimize(machine).optimized
    scenarios = conformance_scenarios(machine, exhaustive_depth=2,
                                      n_random=4)
    report = check_vm_conformance(optimized, pattern="nested-switch",
                                  scenarios=scenarios)
    assert report.conformant, report.summary()


def test_check_codegen_conformance_entry_point():
    machine = flat_machine_with_unreachable_state()
    report = check_codegen_conformance(machine, pattern="state-table",
                                       target="rt16")
    assert report.conformant
    assert report.level is OptLevel.OS
    assert report.target_name == "rt16"
    assert "conformant" in report.summary()


def test_mismatch_is_reported_not_raised():
    """A machine the pattern cannot express reports a failure."""
    from repro.uml import StateMachineBuilder
    b = StateMachineBuilder("Choice")
    b.attribute("x", 1)
    b.state("A")
    b.choice("c")
    b.state("B")
    b.initial_to("A")
    b.transition("A", "c", on="go")
    b.transition("c", "B", guard="x > 0")
    b.transition("c", "A")
    machine = b.build()
    report = check_vm_conformance(machine, pattern="nested-switch",
                                  scenarios=[("go",)])
    assert not report.conformant
    assert "compile/assemble failed" in report.mismatches[0][1]


def test_engine_caches_conformance_runs():
    machine = flat_machine_with_unreachable_state()
    engine = ExperimentEngine()
    first = engine.vm_conformance(machine, n_random=2)
    misses = engine.stats.misses
    again = engine.vm_conformance(machine, n_random=2)
    assert again is first
    assert engine.stats.misses == misses
    assert engine.stats.hits >= 1
    # Different scenario parameters are a different cache entry.
    other = engine.vm_conformance(machine, n_random=3)
    assert other is not first


def test_vm_conformance_scenario_machine_replays_original_workload():
    """Before/after dynamics cells must measure the SAME event
    sequences: the optimized clone replays the original's scenarios."""
    machine = hierarchical_machine_with_shadowed_composite()
    optimized = optimize(machine).optimized
    engine = ExperimentEngine()
    own = engine.vm_conformance(optimized)
    cross = engine.vm_conformance(optimized, scenario_machine=machine)
    assert cross is not own          # different cache entries
    assert cross.conformant, cross.summary()
    # The original's 6-event alphabet yields far more scenarios than the
    # optimized machine's own reduced alphabet...
    assert cross.scenarios_run > own.scenarios_run
    # ...and exactly as many dispatched events as the 'before' cell, so
    # cycles/event denominators are comparable.
    before = engine.vm_conformance(machine)
    assert cross.events_dispatched == before.events_dispatched
    assert cross.scenarios_run == before.scenarios_run


def test_dynamics_rows_cover_grid_and_conform():
    from repro.experiments.dynamics import run_dynamics
    rows = run_dynamics(machine=flat_machine_with_unreachable_state())
    assert len(rows) == 4 * 2   # every pattern x {O0, Os}
    for row in rows:
        assert row.conformant_before and row.conformant_after, row
        assert row.cycles_per_event_before > 0
        # model optimization removes the unreachable state: code shrinks
        assert row.text_after <= row.text_before
