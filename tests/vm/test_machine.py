"""Simulator semantics: the VM agrees with the GIMPLE interpreter.

The GIMPLE interpreter is the reproduction's established execution
substrate; the VM executes the *backend's* output for the same
programs.  Same external call log, same returned values, same final
memory — at every optimization level and on both targets — means the
whole backend (isel, regalloc, peephole, prologue, assembler, VM) is
behavior-preserving.
"""

import pytest

from repro.codegen import generator_by_name
from repro.codegen.harness import GeneratedMachine
from repro.compiler import OptLevel
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.uml import Assign, CallStmt, StateMachineBuilder, parse_expr
from repro.vm import CompiledProgram, VMError, run_vm_scenario
from repro.vm.image import STACK_BASE


def machine_with_arithmetic():
    """Guards + assigns exercising ALU, immediates and memory."""
    b = StateMachineBuilder("Arith")
    b.attribute("x", 5)
    b.attribute("y", 0)
    b.state("A")
    b.state("B")
    b.initial_to("A")
    b.transition("A", "B", on="go", guard="x > 3",
                 effect=[Assign("y", parse_expr("x * 7 - 2")),
                         CallStmt(parse_expr("log(y)")),
                         Assign("x", parse_expr("x - 4"))])
    b.transition("B", "A", on="back", guard="x <= 1",
                 effect=[Assign("y", parse_expr("0 - y")),
                         CallStmt(parse_expr("log(y)"))])
    b.transition("A", "final", on="stop", guard="x == 1")
    return b.build()


LEVELS = [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.OS]


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("target", ["rt32", "rt16"])
def test_vm_matches_gimple_interpreter(level, target):
    machine = machine_with_arithmetic()
    events = ["go", "back", "go", "stop"]
    ref = GeneratedMachine(machine, generator_by_name("nested-switch"),
                           level=level)
    ref.send_all(events)
    vm = run_vm_scenario(machine, events, "nested-switch", level=level,
                         target=target)
    assert vm.calls == ref.calls
    assert vm.is_final() == ref.is_final()
    for attr in ("x", "y"):
        assert vm.read_attribute(attr) == ref.read_attribute(attr)


def test_vm_arithmetic_values():
    machine = machine_with_arithmetic()
    vm = run_vm_scenario(machine, ["go", "back"], "nested-switch")
    # y := 5*7-2 = 33, then y := 0-33 = -33 (signed 32-bit wrap applies)
    assert vm.calls == [("log", (33,)), ("log", (-33,))]
    assert vm.read_attribute("y") == -33
    assert vm.read_attribute("x") == 1


def test_externals_receive_arguments_and_return_values():
    b = StateMachineBuilder("Ext")
    b.attribute("v", 0)
    b.state("A")
    b.initial_to("A")
    b.transition("A", "A", on="tick",
                 effect=[Assign("v", parse_expr("sensor(3, 4)")),
                         CallStmt(parse_expr("report(v)"))])
    machine = b.build()
    vm = run_vm_scenario(machine, ["tick"], "nested-switch",
                         externals={"sensor": lambda a, c: a * 10 + c})
    assert vm.calls == [("sensor", (3, 4)), ("report", (34,))]
    assert vm.read_attribute("v") == 34


@pytest.mark.parametrize("pattern", ["nested-switch", "state-table",
                                     "state-pattern", "flat-switch"])
def test_metrics_are_deterministic_and_populated(pattern):
    machine = hierarchical_machine_with_shadowed_composite()
    events = ["e1", "e2", "e5", "e3"]
    a = run_vm_scenario(machine, events, pattern).metrics
    b = run_vm_scenario(machine, events, pattern).metrics
    assert a == b                       # simulated, not wall clock
    assert a.instructions > 0
    assert a.cycles >= a.instructions   # every instruction costs >= 1
    assert a.events_dispatched == len(events)
    assert a.peak_dispatch_cycles > 0
    assert a.cycles_per_event > 0
    assert a.text_bytes > 0


def test_state_trace_matches_interpreter_on_flat_machine():
    from repro.semantics.runtime import run_scenario
    machine = flat_machine_with_unreachable_state()
    events = ["e1", "e3", "e1", "e4"]
    ref = run_scenario(machine, events)
    vm = run_vm_scenario(machine, events, "nested-switch")
    assert vm.trace.entered_states() == ref.trace.entered_states()


def test_stack_discipline_restores_sp():
    machine = hierarchical_machine_with_shadowed_composite()
    vm = run_vm_scenario(machine, ["e1", "e2", "e3"], "state-pattern")
    assert vm.vm.regs["sp"] == STACK_BASE


def test_unknown_function_raises():
    program = CompiledProgram(flat_machine_with_unreachable_state(),
                              "nested-switch")
    vm = program.boot()
    with pytest.raises(VMError, match="no function"):
        vm.vm.call_function("does::not_exist")
