"""The Executor protocol: one call surface over three backends."""

import pytest

from repro.exec import (FleetExecutor, InterpreterExecutor, VMExecutor,
                        default_executors, normalize_stimuli, run_scenario)
from repro.semantics.runtime import MachineInstance
from repro.semantics.trace import observable_equal
from repro.uml import Event


class TestNormalizeStimuli:
    def test_strings_events_and_pairs(self):
        out = normalize_stimuli(["go", Event("stop"), ("reset", 3)])
        assert out == [("go", 0), ("stop", 0), ("reset", 3)]

    def test_object_with_events_attribute(self):
        class Stim:
            events = (("a", 1), ("b", 2))
        assert normalize_stimuli(Stim()) == [("a", 1), ("b", 2)]


class TestCanonicalRunScenario:
    """One ``run_scenario(executor, machine, stimuli)`` signature for
    every backend — the API the redesign converges on."""

    def test_all_backends_agree_observably(self, flat_machine):
        events = ["e1", "e3", "e1", "e4"]
        reference = run_scenario(InterpreterExecutor(), flat_machine,
                                 events)
        for executor in (VMExecutor(), FleetExecutor()):
            instance = run_scenario(executor, flat_machine, events)
            assert observable_equal(reference.trace, instance.trace), \
                executor.name
            assert instance.in_final == reference.in_final

    def test_hierarchical_machine_agrees(self, hierarchical_machine):
        events = ["e1", "e2"]
        reference = run_scenario(InterpreterExecutor(),
                                 hierarchical_machine, events)
        for executor in (VMExecutor(), FleetExecutor()):
            instance = run_scenario(executor, hierarchical_machine, events)
            assert observable_equal(reference.trace, instance.trace), \
                executor.name

    def test_step_returns_trace_delta(self, flat_machine):
        instance = InterpreterExecutor().load(flat_machine).start()
        delta = instance.step("e1")
        assert delta, "dispatch must produce trace records"
        assert delta == instance.trace.records[-len(delta):]

    def test_externals_flow_through_load(self, flat_machine):
        seen = []
        executor = InterpreterExecutor()
        instance = executor.load(
            flat_machine,
            externals={"s1_entry": lambda: seen.append("s1")})
        instance.start()
        assert seen == ["s1"]


class TestAdapters:
    def test_default_executors_names(self):
        executors = default_executors()
        assert set(executors) == {"interp", "vm", "fleet"}
        for name, executor in executors.items():
            assert executor.name == name
            assert executor.describe()

    def test_vm_executor_memoizes_compile(self, flat_machine):
        executor = VMExecutor()
        assert executor.program_for(flat_machine) is \
            executor.program_for(flat_machine)

    def test_fleet_executor_memoizes_table(self, flat_machine):
        executor = FleetExecutor()
        assert executor.table_for(flat_machine) is \
            executor.table_for(flat_machine)

    def test_vm_instance_guards_lifecycle(self, flat_machine):
        instance = VMExecutor().load(flat_machine)
        with pytest.raises(RuntimeError):
            instance.dispatch("e1")
        instance.start()
        with pytest.raises(RuntimeError):
            instance.start()


class TestDeprecationShims:
    """The pre-redesign entry points still work, now delegating to the
    protocol — identical signatures and return types."""

    def test_semantics_run_scenario_returns_machine_instance(
            self, flat_machine):
        from repro.semantics.runtime import run_scenario as legacy
        instance = legacy(flat_machine, ["e1", "e4"])
        assert isinstance(instance, MachineInstance)
        assert instance.in_final

    def test_vm_run_scenario_returns_compiled_vm(self, flat_machine):
        from repro.vm import run_vm_scenario
        from repro.vm.harness import CompiledMachineVM
        vm = run_vm_scenario(flat_machine, ["e1", "e4"], "nested-switch")
        assert isinstance(vm, CompiledMachineVM)
        assert vm.is_final()

    def test_shim_and_protocol_agree(self, flat_machine):
        from repro.semantics.runtime import run_scenario as legacy
        events = ["e1", "e3"]
        old = legacy(flat_machine, events)
        new = run_scenario(InterpreterExecutor(), flat_machine, events)
        assert observable_equal(old.trace, new.trace)
