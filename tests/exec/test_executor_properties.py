"""Property test: the three executors agree on random machines.

For seeded random workload machines and random stimuli, the reference
interpreter, the compiled VM, and a width-1 fleet produce
``observable_equal`` traces and the same final-state verdict — the
redesign's core guarantee, checked over the space hypothesis explores.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import (FleetExecutor, InterpreterExecutor, VMExecutor,
                        run_scenario)
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.semantics.trace import observable_equal

import random


def _machine(seed: int):
    return generate_machine(WorkloadSpec(
        n_live=4, n_dead=1, n_shadowed_composites=1, composite_width=2,
        entry_calls=1, exit_calls=1, events_per_state=2,
        guarded_fraction=0.3, seed=seed, name=f"Prop{seed}"))


def _stimulus(machine, seed: int, length: int):
    alphabet = [e.name for e in machine.signal_alphabet()]
    rng = random.Random(seed)
    return [rng.choice(alphabet) for _ in range(length)]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(machine_seed=st.integers(0, 2 ** 16),
       stimulus_seed=st.integers(0, 2 ** 16),
       length=st.integers(0, 12))
def test_executors_observably_equal(machine_seed, stimulus_seed, length):
    machine = _machine(machine_seed)
    events = _stimulus(machine, stimulus_seed, length)
    reference = run_scenario(InterpreterExecutor(), machine, events)
    for executor in (VMExecutor(), FleetExecutor(n_lanes=1)):
        instance = run_scenario(executor, machine, events)
        assert observable_equal(reference.trace, instance.trace), (
            f"{executor.name} diverged: machine_seed={machine_seed} "
            f"stimulus_seed={stimulus_seed} length={length}")
        assert instance.in_final == reference.in_final
