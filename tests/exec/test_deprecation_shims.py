"""The PR-6 compatibility shims warn and stay behaviorally identical.

``repro.semantics.runtime.run_scenario`` and
``repro.vm.run_vm_scenario`` are thin shims over the
:mod:`repro.exec` Executor protocol; they must emit a
:class:`DeprecationWarning` on every call while producing exactly the
results of the canonical ``run_scenario(executor, machine, events)``
path they wrap.
"""

import warnings

import pytest

from repro.exec import InterpreterExecutor, VMExecutor, run_scenario
from repro.semantics.runtime import run_scenario as legacy_run_scenario
from repro.semantics.trace import observable_equal
from repro.vm import run_vm_scenario

EVENTS = ["e1", "e3", "e1", "e4"]


class TestInterpreterShim:
    def test_warns(self, flat_machine):
        with pytest.warns(DeprecationWarning,
                          match="repro.semantics.runtime.run_scenario"):
            legacy_run_scenario(flat_machine, EVENTS)

    def test_identical_to_executor_path(self, flat_machine):
        with pytest.warns(DeprecationWarning):
            legacy = legacy_run_scenario(flat_machine, EVENTS)
        canonical = run_scenario(InterpreterExecutor(), flat_machine,
                                 EVENTS)
        assert observable_equal(legacy.trace, canonical.trace)
        assert legacy.in_final == canonical.in_final
        assert legacy.is_terminated == canonical.is_terminated


class TestVMShim:
    def test_warns(self, flat_machine):
        with pytest.warns(DeprecationWarning,
                          match="repro.vm.run_vm_scenario"):
            run_vm_scenario(flat_machine, EVENTS)

    def test_identical_to_executor_path(self, flat_machine):
        with pytest.warns(DeprecationWarning):
            legacy = run_vm_scenario(flat_machine, EVENTS)
        canonical = run_scenario(VMExecutor(), flat_machine, EVENTS)
        assert observable_equal(legacy.trace, canonical.trace)
        assert legacy.is_final() == canonical.in_final


class TestInternalCallersMigrated:
    """The library itself must not route through its own shims."""

    def test_equivalence_check_does_not_warn(self, flat_machine):
        from repro.optim import check_equivalence
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = check_equivalence(flat_machine, flat_machine)
        assert report.equivalent

    def test_codegen_conformance_does_not_warn(self, flat_machine):
        from repro.codegen.harness import observable_calls_of_model
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            observable_calls_of_model(flat_machine, ["e1"])
