"""Tests for the pluggable target subsystem: registry, descriptions,
and cross-target compilation."""

import importlib.util
import pathlib

import pytest

from repro.compiler import OptLevel, compile_unit
from repro.compiler.rtl.ir import RInstr, RTLFunction
from repro.compiler.rtl.regalloc import allocate_registers
from repro.compiler.target import (RT16, RT32, TargetDescription,
                                   TargetError, UnknownTargetError,
                                   available_targets, get_target,
                                   register_target, resolve_target)
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.pipeline import compile_machine

ALL_PATTERN_NAMES = ["state-table", "nested-switch", "state-pattern",
                     "flat-switch"]


def _load_cruise_control():
    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / \
        "cruise_control.py"
    spec = importlib.util.spec_from_file_location("cruise_control", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_cruise_control()


class TestRegistry:
    def test_builtin_targets_registered(self):
        assert {"rt32", "rt16"} <= set(available_targets())

    def test_get_target_returns_descriptions(self):
        assert get_target("rt32") is RT32
        assert get_target("rt16") is RT16

    def test_unknown_target_raises(self):
        with pytest.raises(UnknownTargetError) as exc:
            get_target("frobnicate-64")
        assert "rt32" in str(exc.value)

    def test_unknown_target_is_a_keyerror(self):
        with pytest.raises(KeyError):
            get_target("no-such-isa")

    def test_resolve_target_accepts_all_spellings(self):
        assert resolve_target(None) is RT32          # registry default
        assert resolve_target("rt16") is RT16
        assert resolve_target(RT16) is RT16

    def test_reregistering_same_instance_is_idempotent(self):
        assert register_target(RT32) is RT32

    def test_registering_conflicting_name_raises(self):
        clone = TargetDescription(
            name="rt32", description="imposter", word_size=4,
            allocatable_regs=("s0",), scratch_regs=("t0", "t1"),
            insn_sizes={"label": 0, "ret": 4},
            compare_chain_per_case=8, jump_table_overhead=16)
        with pytest.raises(ValueError):
            register_target(clone)


class TestDescriptions:
    @pytest.mark.parametrize("target", [RT32, RT16], ids=["rt32", "rt16"])
    def test_unknown_mnemonic_raises_keyerror(self, target):
        with pytest.raises(KeyError):
            target.insn_size("frobnicate")

    @pytest.mark.parametrize("target", [RT32, RT16], ids=["rt32", "rt16"])
    def test_label_free_other_sizes_positive(self, target):
        for op, size in target.insn_sizes.items():
            assert size == 0 if op == "label" else size > 0, op

    def test_rt16_immediates_are_narrow(self):
        assert RT16.fits_imm16(127) and RT16.fits_imm16(-128)
        assert not RT16.fits_imm16(128) and not RT16.fits_imm16(-129)
        assert RT32.fits_imm16(32767) and not RT32.fits_imm16(32768)

    def test_rt16_register_file_is_smaller(self):
        assert len(RT16.allocatable_regs) < len(RT32.allocatable_regs)

    def test_validation_rejects_missing_label(self):
        with pytest.raises(TargetError):
            TargetDescription(
                name="bad", description="", word_size=4,
                allocatable_regs=("s0",), scratch_regs=("t0", "t1"),
                insn_sizes={"ret": 4},
                compare_chain_per_case=8, jump_table_overhead=16)

    def test_validation_rejects_nonpositive_size(self):
        with pytest.raises(TargetError):
            TargetDescription(
                name="bad", description="", word_size=4,
                allocatable_regs=("s0",), scratch_regs=("t0", "t1"),
                insn_sizes={"label": 0, "ret": 0},
                compare_chain_per_case=8, jump_table_overhead=16)

    def test_validation_rejects_scratch_alloc_overlap(self):
        with pytest.raises(TargetError):
            TargetDescription(
                name="bad", description="", word_size=4,
                allocatable_regs=("s0", "t0"), scratch_regs=("t0", "t1"),
                insn_sizes={"label": 0, "ret": 4},
                compare_chain_per_case=8, jump_table_overhead=16)


class TestCrossTargetCompilation:
    @pytest.fixture(scope="class")
    def machine(self):
        return hierarchical_machine_with_shadowed_composite()

    @pytest.mark.parametrize("pattern", ALL_PATTERN_NAMES)
    @pytest.mark.parametrize("target", ["rt32", "rt16"])
    def test_positive_total_size_everywhere(self, machine, pattern, target):
        result = compile_machine(machine, pattern, OptLevel.OS,
                                 target=target)
        assert result.total_size > 0
        assert result.target.name == target

    def test_targets_produce_different_sizes(self, machine):
        rt32 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt32").total_size
        rt16 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt16").total_size
        assert rt32 != rt16

    def test_rt16_text_smaller_on_cruise_control(self):
        machine = _load_cruise_control()
        rt32 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt32").module
        rt16 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt16").module
        assert rt16.text_size < rt32.text_size

    @pytest.mark.parametrize("target_name", ["rt32", "rt16"])
    def test_every_emitted_mnemonic_is_sized(self, machine, target_name):
        target = get_target(target_name)
        module = compile_machine(machine, "nested-switch", OptLevel.O0,
                                 target=target).module
        for fn in module.functions:
            assert fn.target is target
            for instr in fn.instrs:
                assert target.has_insn(instr.op), instr.op

    def test_rt16_switch_lowering_prefers_chains(self, machine):
        """The wide table dispatch makes -Os chain switches on rt16 that
        rt32 tables — a per-target lowering decision, not just scaling."""
        rt32 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt32").module
        rt16 = compile_machine(machine, "nested-switch", OptLevel.OS,
                               target="rt16").module

        def jt_count(module):
            return sum(1 for fn in module.functions
                       for i in fn.instrs if i.op == "jt")

        assert jt_count(rt16) <= jt_count(rt32)

    def test_rt16_register_pressure_spills_earlier(self):
        """Nine simultaneously-live values fit rt32's ten registers but
        exceed rt16's six."""
        def build():
            rtl = RTLFunction("f")
            n = len(RT16.allocatable_regs) + 3
            for i in range(n):
                rtl.emit(RInstr("li", defs=(f"v{i}",), imm=i))
            for i in range(n):
                rtl.emit(RInstr("argmv", uses=(f"v{i}",), imm=0))
            rtl.emit(RInstr("ret"))
            return rtl

        rt32_fn = allocate_registers(build(), target=RT32)
        rt16_fn = allocate_registers(build(), target=RT16)
        assert rt32_fn.frame_slots == 0
        assert rt16_fn.frame_slots >= 3


class TestExperimentsCLI:
    def test_unknown_target_exits_nonzero(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--target", "no-such-isa"]) == 2
        assert "no-such-isa" in capsys.readouterr().err
