"""Tests for the C++ frontend lowering, the RT32 backend and the driver."""

import pytest

from repro.cpp import ast as C
from repro.cpp.types import (ArrayType, ClassRefType, FuncPtrType, INT,
                             PointerType, VOID)
from repro.compiler import (CompileResult, LoweringError, OptLevel,
                            compile_unit, lower_unit, mangle)
from repro.compiler.gimple.interp import GimpleInterpreter
from repro.compiler.frontend.lower import ClassLayout
from repro.compiler.rtl.regalloc import live_intervals
from repro.compiler.target.rt32 import ALLOCATABLE_REGS, INSN_SIZES


def simple_unit() -> C.TranslationUnit:
    unit = C.TranslationUnit("t")
    body = C.Block()
    body.add(C.Return(C.Binary("+", C.Var("a"), C.Var("b"))))
    unit.functions.append(C.Function(
        "add", [C.Param("a", INT), C.Param("b", INT)], INT, body))
    return unit


def run_unit(unit, fn, args=(), level=OptLevel.OS, externals=None):
    result = compile_unit(unit, level)
    interp = GimpleInterpreter(result.program, externals)
    return interp.call(fn, tuple(args))


class TestLoweringBasics:
    def test_add_function(self):
        assert run_unit(simple_unit(), "add", (2, 3)) == 5

    @pytest.mark.parametrize("level", list(OptLevel))
    def test_same_result_at_every_level(self, level):
        assert run_unit(simple_unit(), "add", (10, -4), level) == 6

    def test_if_else(self):
        unit = C.TranslationUnit("t")
        body = C.Block()
        body.add(C.If(C.Binary("<", C.Var("x"), C.IntLit(0)),
                      C.Block([C.Return(C.Unary("-", C.Var("x")))]),
                      C.Block([C.Return(C.Var("x"))])))
        unit.functions.append(C.Function("abs_", [C.Param("x", INT)], INT,
                                         body))
        assert run_unit(unit, "abs_", (-7,)) == 7
        assert run_unit(unit, "abs_", (7,)) == 7

    def test_while_loop(self):
        unit = C.TranslationUnit("t")
        body = C.Block()
        body.add(C.VarDecl("acc", INT, C.IntLit(0)))
        body.add(C.VarDecl("i", INT, C.IntLit(0)))
        loop = C.While(C.Binary("<", C.Var("i"), C.Var("n")))
        loop.body.add(C.Assign(C.Var("acc"),
                               C.Binary("+", C.Var("acc"), C.Var("i"))))
        loop.body.add(C.Assign(C.Var("i"),
                               C.Binary("+", C.Var("i"), C.IntLit(1))))
        body.add(loop)
        body.add(C.Return(C.Var("acc")))
        unit.functions.append(C.Function("tri", [C.Param("n", INT)], INT,
                                         body))
        assert run_unit(unit, "tri", (5,)) == 10

    def test_short_circuit_does_not_evaluate_rhs(self):
        # (x != 0) && (10 / x > 1) must not divide when x == 0.
        unit = C.TranslationUnit("t")
        cond = C.Binary("&&",
                        C.Binary("!=", C.Var("x"), C.IntLit(0)),
                        C.Binary(">", C.Binary("/", C.IntLit(10),
                                               C.Var("x")),
                                 C.IntLit(1)))
        body = C.Block([C.If(cond, C.Block([C.Return(C.IntLit(1))])),
                        C.Return(C.IntLit(0))])
        unit.functions.append(C.Function("f", [C.Param("x", INT)], INT,
                                         body))
        assert run_unit(unit, "f", (0,), OptLevel.O0) == 0
        assert run_unit(unit, "f", (5,), OptLevel.O0) == 1

    def test_switch_dispatch(self):
        unit = C.TranslationUnit("t")
        sw = C.Switch(C.Var("x"))
        for value, result in ((0, 10), (1, 20), (5, 30)):
            case = C.SwitchCase([C.IntLit(value)])
            case.body.add(C.Return(C.IntLit(result)))
            sw.cases.append(case)
        body = C.Block([sw, C.Return(C.IntLit(-1))])
        unit.functions.append(C.Function("f", [C.Param("x", INT)], INT,
                                         body))
        for level in OptLevel:
            assert run_unit(unit, "f", (0,), level) == 10
            assert run_unit(unit, "f", (5,), level) == 30
            assert run_unit(unit, "f", (3,), level) == -1

    def test_extern_call_recorded(self):
        unit = C.TranslationUnit("t")
        unit.externs.append(C.ExternFunction("probe", [C.Param("v", INT)]))
        body = C.Block([C.ExprStmt(C.Call("probe", (C.IntLit(3),))),
                        C.Return()])
        unit.functions.append(C.Function("f", [], VOID, body))
        result = compile_unit(unit, OptLevel.OS)
        interp = GimpleInterpreter(result.program)
        interp.call("f", ())
        assert interp.call_log == [("probe", (3,))]

    def test_break_outside_loop_rejected(self):
        unit = C.TranslationUnit("t")
        unit.functions.append(C.Function("f", [], VOID,
                                         C.Block([C.Break()])))
        with pytest.raises(LoweringError):
            lower_unit(unit)


class TestClassesAndVirtuals:
    def make_unit(self):
        unit = C.TranslationUnit("t")
        base = C.ClassDecl("Animal")
        base.methods.append(C.Method(
            "legs", [], INT, C.Block([C.Return(C.IntLit(4))]),
            is_virtual=True))
        bird = C.ClassDecl("Bird", base="Animal")
        bird.methods.append(C.Method(
            "legs", [], INT, C.Block([C.Return(C.IntLit(2))]),
            is_virtual=True, is_override=True))
        unit.classes.extend([base, bird])
        unit.globals.append(C.GlobalVar("g_animal", ClassRefType("Animal")))
        unit.globals.append(C.GlobalVar("g_bird", ClassRefType("Bird")))
        # int probe(Animal* a) { return a->legs(); }  (virtual dispatch)
        body = C.Block([C.Return(C.MethodCall(
            C.Var("a"), "Animal", "legs", (), virtual_dispatch=True))])
        unit.functions.append(C.Function(
            "probe", [C.Param("a", PointerType(ClassRefType("Animal")))],
            INT, body))
        return unit

    def test_vtable_dispatch_selects_override(self):
        result = compile_unit(self.make_unit(), OptLevel.OS)
        interp = GimpleInterpreter(result.program)
        assert interp.call("probe", (interp.address_of("g_animal"),)) == 4
        assert interp.call("probe", (interp.address_of("g_bird"),)) == 2

    def test_vtables_in_rodata(self):
        result = compile_unit(self.make_unit(), OptLevel.OS)
        names = {obj.name for obj in result.module.data_objects
                 if obj.section == "rodata"}
        assert {"vtbl.Animal", "vtbl.Bird"} <= names

    def test_layout_field_offsets(self):
        decl = C.ClassDecl("P")
        decl.fields.append(C.Field("x", INT))
        decl.fields.append(C.Field("y", INT))
        layout = ClassLayout(decl, None)
        assert layout.offset_of("x") == 0
        assert layout.offset_of("y") == 4
        assert layout.size == 8

    def test_layout_vptr_shifts_fields(self):
        decl = C.ClassDecl("V")
        decl.fields.append(C.Field("x", INT))
        decl.methods.append(C.Method("m", [], VOID, C.Block(),
                                     is_virtual=True))
        layout = ClassLayout(decl, None)
        assert layout.offset_of("x") == 4  # vptr at 0

    def test_inherited_fields_after_base(self):
        base = C.ClassDecl("B")
        base.fields.append(C.Field("a", INT))
        derived = C.ClassDecl("D", base="B")
        derived.fields.append(C.Field("b", INT))
        lb = ClassLayout(base, None)
        ld = ClassLayout(derived, lb)
        assert ld.offset_of("a") == 0
        assert ld.offset_of("b") == 4

    def test_field_access_via_this(self):
        unit = C.TranslationUnit("t")
        cls = C.ClassDecl("Counter")
        cls.fields.append(C.Field("n", INT))
        cls.methods.append(C.Method("bump", [], INT, C.Block([
            C.Assign(C.FieldAccess(C.ThisExpr(), "n"),
                     C.Binary("+", C.FieldAccess(C.ThisExpr(), "n"),
                              C.IntLit(1))),
            C.Return(C.FieldAccess(C.ThisExpr(), "n")),
        ])))
        unit.classes.append(cls)
        unit.globals.append(C.GlobalVar("g_c", ClassRefType("Counter")))
        result = compile_unit(unit, OptLevel.OS)
        interp = GimpleInterpreter(result.program)
        this = interp.address_of("g_c")
        assert interp.call(mangle("Counter", "bump"), (this,)) == 1
        assert interp.call(mangle("Counter", "bump"), (this,)) == 2


class TestTablesAndFunctionPointers:
    def test_struct_array_with_function_pointers(self):
        unit = C.TranslationUnit("t")
        row = C.ClassDecl("Row")
        row.fields.append(C.Field("key", INT))
        row.fields.append(C.Field("fn", FuncPtrType(INT, (INT,))))
        unit.classes.append(row)
        for name, mul in (("f10", 10), ("f100", 100)):
            unit.functions.append(C.Function(
                name, [C.Param("x", INT)], INT,
                C.Block([C.Return(C.Binary("*", C.Var("x"),
                                           C.IntLit(mul)))])))
        unit.globals.append(C.GlobalVar(
            "table", ArrayType(ClassRefType("Row"), 2),
            C.ArrayInit([
                C.StructInit([C.IntLit(1), C.FuncRef("f10")]),
                C.StructInit([C.IntLit(2), C.FuncRef("f100")]),
            ]), is_const=True))
        # int lookup(int key, int arg): scan table, call handler
        body = C.Block()
        body.add(C.VarDecl("i", INT, C.IntLit(0)))
        loop = C.While(C.Binary("<", C.Var("i"), C.IntLit(2)))
        match = C.Binary("==", C.FieldAccess(
            C.Index(C.Var("table"), C.Var("i")), "key"), C.Var("key"))
        loop.body.add(C.If(match, C.Block([C.Return(C.IndirectCall(
            C.FieldAccess(C.Index(C.Var("table"), C.Var("i")), "fn"),
            (C.Var("arg"),), FuncPtrType(INT, (INT,))))])))
        loop.body.add(C.Assign(C.Var("i"), C.Binary("+", C.Var("i"),
                                                    C.IntLit(1))))
        body.add(loop)
        body.add(C.Return(C.IntLit(-1)))
        unit.functions.append(C.Function(
            "lookup", [C.Param("key", INT), C.Param("arg", INT)], INT, body))
        for level in OptLevel:
            assert run_unit(unit, "lookup", (1, 7), level) == 70
            assert run_unit(unit, "lookup", (2, 7), level) == 700
            assert run_unit(unit, "lookup", (9, 7), level) == -1


class TestBackend:
    def test_o0_larger_than_os(self):
        unit = simple_unit()
        o0 = compile_unit(unit, OptLevel.O0).total_size
        os_ = compile_unit(unit, OptLevel.OS).total_size
        assert os_ <= o0

    def test_function_sizes_positive_and_sum(self):
        result = compile_unit(simple_unit(), OptLevel.OS)
        sizes = result.module.function_sizes()
        assert sizes["add"] > 0
        assert sum(sizes.values()) == result.module.text_size

    def test_all_mnemonics_have_sizes(self):
        result = compile_unit(simple_unit(), OptLevel.O0)
        for fn in result.module.functions:
            for instr in fn.instrs:
                assert instr.op in INSN_SIZES

    def test_leaf_function_omits_lr(self):
        result = compile_unit(simple_unit(), OptLevel.OS)
        ops = [(i.op, i.uses) for i in result.module.function("add").instrs]
        assert ("push", ("lr",)) not in ops

    def test_listing_renders(self):
        result = compile_unit(simple_unit(), OptLevel.OS)
        listing = result.module.listing()
        assert "add:" in listing and ".text" in listing

    def test_dumps_capture_pass_pipeline(self):
        result = compile_unit(simple_unit(), OptLevel.OS,
                              capture_dumps=True)
        assert "lower" in result.dumps
        assert any(k.startswith("dce") for k in result.dumps)
        with pytest.raises(KeyError):
            result.dump_after("nonexistent-pass")

    def test_live_intervals_cover_loop_carried_values(self):
        from repro.compiler.rtl.ir import RInstr, RTLFunction, label
        rtl = RTLFunction("f")
        rtl.emit(RInstr("li", defs=("v0",), imm=0))
        rtl.emit(label(".L"))
        rtl.emit(RInstr("addi", defs=("v0",), uses=("v0",), imm=1))
        rtl.emit(RInstr("setlti", defs=("v1",), uses=("v0",), imm=10))
        rtl.emit(RInstr("bnez", uses=("v1",), target=".L"))
        rtl.emit(RInstr("ret"))
        intervals = live_intervals(rtl)
        lo, hi = intervals["v0"]
        assert lo == 0 and hi >= 4  # alive across the back edge

    def test_register_pressure_spills_but_stays_correct(self):
        # Sum of 14 simultaneously-live values forces spilling (10 regs).
        unit = C.TranslationUnit("t")
        body = C.Block()
        n = 14
        for i in range(n):
            body.add(C.VarDecl(f"v{i}", INT,
                               C.Binary("*", C.Var("x"), C.IntLit(i + 1))))
        acc: C.Expr = C.Var("v0")
        for i in range(1, n):
            acc = C.Binary("+", acc, C.Var(f"v{i}"))
        body.add(C.Return(acc))
        unit.functions.append(C.Function("f", [C.Param("x", INT)], INT,
                                         body))
        expected = sum(2 * (i + 1) for i in range(n))
        # Behavior validated on the GIMPLE level; the backend must at
        # least allocate without errors and report spill slots.
        result = compile_unit(unit, OptLevel.O0)
        assert run_unit(unit, "f", (2,), OptLevel.O0) == expected
        # O0 keeps every local alive; expect spills.
        assert any(fn.frame_slots > 0 for fn in result.module.functions)


class TestSwitchLowering:
    def _switch_unit(self, n_cases, sparse=False):
        unit = C.TranslationUnit("t")
        sw = C.Switch(C.Var("x"))
        for i in range(n_cases):
            value = i * 100 if sparse else i
            case = C.SwitchCase([C.IntLit(value)])
            case.body.add(C.Return(C.IntLit(i)))
            sw.cases.append(case)
        unit.functions.append(C.Function(
            "f", [C.Param("x", INT)], INT,
            C.Block([sw, C.Return(C.IntLit(-1))])))
        return unit

    def test_dense_switch_gets_jump_table(self):
        result = compile_unit(self._switch_unit(8), OptLevel.OS)
        assert any(i.op == "jt" for fn in result.module.functions
                   for i in fn.instrs)
        assert any(".jt" in obj.name for obj in result.module.data_objects)

    def test_sparse_switch_gets_compare_chain(self):
        result = compile_unit(self._switch_unit(8, sparse=True), OptLevel.OS)
        assert not any(i.op == "jt" for fn in result.module.functions
                       for i in fn.instrs)

    def test_both_forms_behave_identically(self):
        for sparse in (False, True):
            unit = self._switch_unit(8, sparse)
            step = 100 if sparse else 1
            for i in range(8):
                assert run_unit(unit, "f", (i * step,)) == i
            assert run_unit(unit, "f", (9999,)) == -1
