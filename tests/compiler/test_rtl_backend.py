"""Unit tests for the RTL layer: isel details, fusion, peephole, regalloc."""

import pytest

from repro.compiler.rtl.ir import RInstr, RTLFunction, is_branch, label
from repro.compiler.rtl.isel import SwitchLowering
from repro.compiler.rtl.peephole import fuse_compare_branches, run_peephole
from repro.compiler.rtl.regalloc import allocate_registers
from repro.compiler.target.rt32 import (ALLOCATABLE_REGS, INSN_SIZES,
                                        fits_imm16, insn_size)


class TestTarget:
    def test_every_size_positive_except_label(self):
        for op, size in INSN_SIZES.items():
            if op == "label":
                assert size == 0
            else:
                assert size > 0, op

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            insn_size("frobnicate")

    def test_imm16_boundaries(self):
        assert fits_imm16(32767) and fits_imm16(-32768)
        assert not fits_imm16(32768) and not fits_imm16(-32769)

    def test_fused_branches_cost_one_set(self):
        assert INSN_SIZES["beq"] == INSN_SIZES["seteq"]
        assert INSN_SIZES["beq"] < INSN_SIZES["seteq"] + INSN_SIZES["bnez"]


class TestSwitchLoweringPolicy:
    def test_dense_cases_prefer_table_for_size(self):
        policy = SwitchLowering(optimize_for_size=True)
        assert policy.use_jump_table(list(range(10)))

    def test_sparse_cases_prefer_chain_for_size(self):
        policy = SwitchLowering(optimize_for_size=True)
        assert not policy.use_jump_table([0, 1000, 2000])

    def test_speed_policy_uses_density_and_count(self):
        policy = SwitchLowering(optimize_for_size=False)
        assert policy.use_jump_table([0, 1, 2, 3, 4])
        assert not policy.use_jump_table([0, 1, 2])  # too few

    def test_single_case_never_tabled(self):
        assert not SwitchLowering(True).use_jump_table([5])


class TestFusion:
    def make_rtl(self, branch_op="bnez", extra_use=False):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("setlt", defs=("v1",), uses=("v0", "v2")))
        rtl.emit(RInstr(branch_op, uses=("v1",), target=".L"))
        if extra_use:
            rtl.emit(RInstr("mv", defs=("v3",), uses=("v1",)))
        rtl.emit(label(".L"))
        rtl.emit(RInstr("ret"))
        return rtl

    def test_fuses_set_bnez(self):
        rtl = self.make_rtl()
        assert fuse_compare_branches(rtl) == 1
        assert rtl.instrs[0].op == "blt"
        assert rtl.instrs[0].uses == ("v0", "v2")

    def test_beqz_fuses_with_negated_condition(self):
        rtl = self.make_rtl(branch_op="beqz")
        fuse_compare_branches(rtl)
        assert rtl.instrs[0].op == "bge"

    def test_no_fusion_when_result_reused(self):
        rtl = self.make_rtl(extra_use=True)
        assert fuse_compare_branches(rtl) == 0

    def test_immediate_compare_fuses(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("seteqi", defs=("v1",), uses=("v0",), imm=4))
        rtl.emit(RInstr("bnez", uses=("v1",), target=".L"))
        rtl.emit(label(".L"))
        rtl.emit(RInstr("ret"))
        fuse_compare_branches(rtl)
        assert rtl.instrs[0].op == "beqi"
        assert rtl.instrs[0].imm == 4


class TestPeephole:
    def test_removes_self_move(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("mv", defs=("s0",), uses=("s0",)))
        rtl.emit(RInstr("ret"))
        assert run_peephole(rtl) == 1

    def test_removes_jump_to_next(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("b", target=".L"))
        rtl.emit(label(".L"))
        rtl.emit(RInstr("ret"))
        assert run_peephole(rtl) == 1

    def test_keeps_jump_over_code(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("b", target=".L2"))
        rtl.emit(label(".L1"))
        rtl.emit(RInstr("ret"))
        rtl.emit(label(".L2"))
        rtl.emit(RInstr("ret"))
        assert run_peephole(rtl) == 0

    def test_collapses_duplicate_li(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("li", defs=("s0",), imm=7))
        rtl.emit(RInstr("li", defs=("s0",), imm=7))
        rtl.emit(RInstr("ret"))
        assert run_peephole(rtl) == 1


class TestRegalloc:
    def test_small_function_uses_few_registers(self):
        rtl = RTLFunction("f")
        rtl.emit(RInstr("li", defs=("v0",), imm=1))
        rtl.emit(RInstr("li", defs=("v1",), imm=2))
        rtl.emit(RInstr("add", defs=("v2",), uses=("v0", "v1")))
        rtl.emit(RInstr("retmv", uses=("v2",)))
        rtl.emit(RInstr("ret"))
        allocate_registers(rtl)
        assert len(rtl.saved_regs) <= 3
        assert rtl.frame_slots == 0

    def test_register_reuse_after_death(self):
        # Sequential short-lived values must share registers.
        rtl = RTLFunction("f")
        for i in range(30):
            rtl.emit(RInstr("li", defs=(f"v{i}",), imm=i))
            rtl.emit(RInstr("argmv", uses=(f"v{i}",), imm=0))
            rtl.emit(RInstr("call", symbol="sink"))
        rtl.emit(RInstr("ret"))
        allocate_registers(rtl)
        assert rtl.frame_slots == 0
        assert len(rtl.saved_regs) <= 2

    def test_spill_when_pressure_exceeds_file(self):
        n = len(ALLOCATABLE_REGS) + 3
        rtl = RTLFunction("f")
        for i in range(n):
            rtl.emit(RInstr("li", defs=(f"v{i}",), imm=i))
        # All still live here:
        for i in range(n):
            rtl.emit(RInstr("argmv", uses=(f"v{i}",), imm=0))
        rtl.emit(RInstr("ret"))
        allocate_registers(rtl)
        assert rtl.frame_slots >= 3
        # Spill code uses only scratch registers.
        for instr in rtl.instrs:
            for reg in instr.defs + instr.uses:
                assert not reg.startswith("v"), f"virtual leaked: {instr}"

    def test_is_branch_classification(self):
        assert is_branch(RInstr("beqi", uses=("s0",), imm=1, target=".L"))
        assert is_branch(RInstr("ret"))
        assert not is_branch(RInstr("add", defs=("s0",),
                                    uses=("s1", "s2")))
