"""Tests for SSA construction/destruction and the middle-end passes."""

import pytest

from repro.compiler.gimple.cfg import remove_unreachable_blocks
from repro.compiler.gimple.interp import GimpleInterpreter
from repro.compiler.gimple.ir import (BinOp, Branch, Call, Const,
                                      GimpleFunction, Jump, Move, Phi,
                                      Program, Reg, Ret, Store, SwitchTerm)
from repro.compiler.gimple.ssa import SSAError, from_ssa, to_ssa, verify_ssa
from repro.compiler.passes.ccp import run_ccp
from repro.compiler.passes.copyprop import run_copyprop
from repro.compiler.passes.cse import run_cse
from repro.compiler.passes.dce import run_dce
from repro.compiler.passes.inline import InlinePolicy, run_inline
from repro.compiler.passes.simplify_cfg import run_simplify_cfg


def counting_loop() -> GimpleFunction:
    """i = 0; while (i < n) i = i + 1; return i;"""
    fn = GimpleFunction("count", [Reg("n")])
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    entry.add(Const(Reg("i"), 0))
    entry.terminator = Jump(header.label)
    header.add(BinOp(Reg("c"), "<", Reg("i"), Reg("n")))
    header.terminator = Branch(Reg("c"), body.label, exit_.label)
    body.add(BinOp(Reg("i"), "+", Reg("i"), 1))
    body.terminator = Jump(header.label)
    exit_.terminator = Ret(Reg("i"))
    return fn


def run(fn: GimpleFunction, *args: int) -> int:
    program = Program("t")
    program.add_function(fn)
    return GimpleInterpreter(program).call(fn.name, tuple(args))


class TestSSA:
    def test_loop_gets_phi(self):
        fn = counting_loop()
        to_ssa(fn)
        verify_ssa(fn)
        header = fn.blocks["header1"]
        assert len(header.phis()) == 1

    def test_single_definition_invariant(self):
        fn = counting_loop()
        to_ssa(fn)
        seen = set()
        for block in fn.blocks.values():
            for instr in block.instrs:
                if instr.dst is not None:
                    assert instr.dst not in seen
                    seen.add(instr.dst)

    def test_round_trip_preserves_behavior(self):
        for n in (0, 1, 5, 17):
            fn = counting_loop()
            assert run(fn, n) == n
            fn2 = counting_loop()
            to_ssa(fn2)
            from_ssa(fn2)
            assert run(fn2, n) == n

    def test_verify_rejects_double_definition(self):
        fn = GimpleFunction("bad")
        block = fn.new_block()
        block.add(Const(Reg("x", 1), 1))
        block.add(Const(Reg("x", 1), 2))
        block.terminator = Ret()
        with pytest.raises(SSAError):
            verify_ssa(fn)

    def test_use_of_undefined_register_raises(self):
        fn = GimpleFunction("bad")
        block = fn.new_block()
        block.add(Move(Reg("y"), Reg("ghost")))
        block.terminator = Ret()
        with pytest.raises(SSAError):
            to_ssa(fn)


class TestCCP:
    def test_folds_constants(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.add(Const(Reg("a"), 2))
        block.add(Const(Reg("b"), 3))
        block.add(BinOp(Reg("c"), "*", Reg("a"), Reg("b")))
        block.terminator = Ret(Reg("c"))
        to_ssa(fn)
        run_ccp(fn)
        assert run(fn) == 6

    def test_kills_constant_branch(self):
        fn = GimpleFunction("f")
        entry = fn.new_block("entry")
        dead = fn.new_block("dead")
        live = fn.new_block("live")
        entry.add(Const(Reg("c"), 0))
        entry.terminator = Branch(Reg("c"), dead.label, live.label)
        dead.terminator = Ret(99)
        live.terminator = Ret(1)
        to_ssa(fn)
        run_ccp(fn)
        run_simplify_cfg(fn)
        assert "dead1" not in fn.blocks
        assert run(fn) == 1

    def test_constant_switch_becomes_jump(self):
        fn = GimpleFunction("f")
        entry = fn.new_block("entry")
        arms = [fn.new_block(f"arm{i}") for i in range(3)]
        entry.add(Const(Reg("v"), 1))
        entry.terminator = SwitchTerm(Reg("v"),
                                      {i: arms[i].label for i in range(3)},
                                      arms[0].label)
        for i, arm in enumerate(arms):
            arm.terminator = Ret(i * 10)
        to_ssa(fn)
        run_ccp(fn)
        assert isinstance(fn.blocks[fn.entry].terminator, Jump)
        assert run(fn) == 10

    def test_runtime_value_not_folded(self):
        fn = counting_loop()
        to_ssa(fn)
        run_ccp(fn)
        # The loop must survive: i and c depend on the runtime n.
        assert run(fn, 4) == 4

    def test_phi_meet_over_executable_edges_only(self):
        # if (true) x=5 else x=7; return x  ->  5
        fn = GimpleFunction("f")
        entry = fn.new_block("entry")
        t = fn.new_block("t")
        e = fn.new_block("e")
        join = fn.new_block("join")
        entry.add(Const(Reg("c"), 1))
        entry.terminator = Branch(Reg("c"), t.label, e.label)
        t.add(Const(Reg("x"), 5))
        t.terminator = Jump(join.label)
        e.add(Const(Reg("x"), 7))
        e.terminator = Jump(join.label)
        join.terminator = Ret(Reg("x"))
        to_ssa(fn)
        run_ccp(fn)
        run_simplify_cfg(fn)
        assert run(fn) == 5


class TestDCE:
    def test_removes_unused_pure_instruction(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.add(Const(Reg("unused"), 42))
        block.add(Const(Reg("used"), 7))
        block.terminator = Ret(Reg("used"))
        to_ssa(fn)
        removed = run_dce(fn)
        assert removed == 1
        assert run(fn) == 7

    def test_keeps_stores_and_calls(self):
        fn = GimpleFunction("f", [Reg("p")])
        block = fn.new_block()
        block.add(Const(Reg("v"), 1))
        block.add(Store(Reg("p"), 0, Reg("v")))
        block.add(Call(None, "effect", ()))
        block.terminator = Ret()
        to_ssa(fn)
        run_dce(fn)
        kinds = [type(i).__name__ for i in fn.blocks[fn.entry].instrs]
        assert "Store" in kinds and "Call" in kinds

    def test_drops_unused_call_result_register(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.add(Call(Reg("r"), "effect", ()))
        block.terminator = Ret(0)
        to_ssa(fn)
        run_dce(fn)
        (call,) = fn.blocks[fn.entry].instrs
        assert call.dst is None

    def test_transitively_dead_chain(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.add(Const(Reg("a"), 1))
        block.add(BinOp(Reg("b"), "+", Reg("a"), 1))
        block.add(BinOp(Reg("c"), "+", Reg("b"), 1))
        block.terminator = Ret(7)
        to_ssa(fn)
        assert run_dce(fn) == 3


class TestCopyPropAndCSE:
    def test_copy_chain_collapses(self):
        fn = GimpleFunction("f", [Reg("x")])
        block = fn.new_block()
        block.add(Move(Reg("a"), Reg("x")))
        block.add(Move(Reg("b"), Reg("a")))
        block.add(BinOp(Reg("c"), "+", Reg("b"), 1))
        block.terminator = Ret(Reg("c"))
        to_ssa(fn)
        run_copyprop(fn)
        run_dce(fn)
        assert run(fn, 9) == 10
        binop = [i for i in fn.blocks[fn.entry].instrs
                 if isinstance(i, BinOp)][0]
        assert binop.a.name.startswith("x")

    def test_cse_reuses_redundant_computation(self):
        fn = GimpleFunction("f", [Reg("x")])
        block = fn.new_block()
        block.add(BinOp(Reg("a"), "*", Reg("x"), 24))
        block.add(BinOp(Reg("b"), "*", Reg("x"), 24))
        block.add(BinOp(Reg("c"), "+", Reg("a"), Reg("b")))
        block.terminator = Ret(Reg("c"))
        to_ssa(fn)
        replaced = run_cse(fn)
        assert replaced == 1
        run_copyprop(fn)
        run_dce(fn)
        muls = [i for b in fn.blocks.values() for i in b.instrs
                if isinstance(i, BinOp) and i.op == "*"]
        assert len(muls) == 1
        assert run(fn, 2) == 96

    def test_cse_respects_commutativity(self):
        fn = GimpleFunction("f", [Reg("x"), Reg("y")])
        block = fn.new_block()
        block.add(BinOp(Reg("a"), "+", Reg("x"), Reg("y")))
        block.add(BinOp(Reg("b"), "+", Reg("y"), Reg("x")))
        block.add(BinOp(Reg("c"), "*", Reg("a"), Reg("b")))
        block.terminator = Ret(Reg("c"))
        to_ssa(fn)
        assert run_cse(fn) == 1

    def test_cse_does_not_hoist_across_branches(self):
        # Computation in one arm must not be reused in the sibling arm.
        fn = GimpleFunction("f", [Reg("x")])
        entry = fn.new_block("entry")
        t = fn.new_block("t")
        e = fn.new_block("e")
        entry.add(BinOp(Reg("c"), "<", Reg("x"), 0))
        entry.terminator = Branch(Reg("c"), t.label, e.label)
        t.add(BinOp(Reg("a"), "*", Reg("x"), 3))
        t.terminator = Ret(Reg("a"))
        e.add(BinOp(Reg("b"), "*", Reg("x"), 3))
        e.terminator = Ret(Reg("b"))
        to_ssa(fn)
        assert run_cse(fn) == 0


class TestInline:
    def make_program(self):
        program = Program("p")
        callee = GimpleFunction("double_it", [Reg("x")])
        block = callee.new_block()
        block.add(BinOp(Reg("r"), "*", Reg("x"), 2))
        block.terminator = Ret(Reg("r"))
        program.add_function(callee)
        caller = GimpleFunction("main", [Reg("v")])
        block = caller.new_block()
        block.add(Call(Reg("d"), "double_it", (Reg("v"),)))
        block.add(BinOp(Reg("out"), "+", Reg("d"), 1))
        block.terminator = Ret(Reg("out"))
        program.add_function(caller)
        return program

    def test_inline_small_function(self):
        program = self.make_program()
        inlined = run_inline(program, InlinePolicy.for_speed())
        assert inlined == 1
        main = program.functions["main"]
        assert not any(isinstance(i, Call)
                       for b in main.blocks.values() for i in b.instrs)
        assert GimpleInterpreter(program).call("main", (5,)) == 11

    def test_size_policy_blocks_growth(self):
        program = self.make_program()
        # Grow the callee beyond the -Os threshold.
        callee = program.functions["double_it"]
        block = callee.blocks[callee.entry]
        for i in range(10):
            block.instrs.insert(0, Const(Reg(f"pad{i}"), i))
        assert run_inline(program, InlinePolicy.for_size()) == 0

    def test_recursive_function_not_inlined(self):
        program = Program("p")
        rec = GimpleFunction("rec", [Reg("x")])
        block = rec.new_block()
        block.add(Call(Reg("r"), "rec", (Reg("x"),)))
        block.terminator = Ret(Reg("r"))
        program.add_function(rec)
        caller = GimpleFunction("main", [])
        block = caller.new_block()
        block.add(Call(Reg("d"), "rec", (1,)))
        block.terminator = Ret(Reg("d"))
        program.add_function(caller)
        assert run_inline(program, InlinePolicy.for_speed()) == 0


class TestSimplifyCFG:
    def test_merges_straightline_chain(self):
        fn = GimpleFunction("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        c = fn.new_block("c")
        a.add(Const(Reg("x"), 1))
        a.terminator = Jump(b.label)
        b.add(BinOp(Reg("y"), "+", Reg("x"), 1))
        b.terminator = Jump(c.label)
        c.terminator = Ret(Reg("y"))
        run_simplify_cfg(fn)
        assert len(fn.blocks) == 1
        assert run(fn) == 2

    def test_forwards_empty_block(self):
        fn = GimpleFunction("f")
        entry = fn.new_block("entry")
        hop = fn.new_block("hop")
        t = fn.new_block("t")
        e = fn.new_block("e")
        entry.add(Const(Reg("c"), 1))
        entry.terminator = Branch(Reg("c"), hop.label, e.label)
        hop.terminator = Jump(t.label)
        t.terminator = Ret(1)
        e.terminator = Ret(0)
        run_simplify_cfg(fn)
        assert run(fn) == 1
        assert "hop1" not in fn.blocks

    def test_degenerate_branch_collapses(self):
        fn = GimpleFunction("f")
        entry = fn.new_block("entry")
        only = fn.new_block("only")
        entry.add(Const(Reg("c"), 1))
        entry.terminator = Branch(Reg("c"), only.label, only.label)
        only.terminator = Ret(3)
        run_simplify_cfg(fn)
        assert run(fn) == 3
