"""Tests for the GIMPLE IR containers, CFG utilities and dominators."""

import pytest

from repro.compiler.gimple.cfg import (predecessors, reachable_blocks,
                                       remove_unreachable_blocks,
                                       reverse_postorder, successors)
from repro.compiler.gimple.dom import compute_dominators
from repro.compiler.gimple.ir import (BinOp, Branch, Const, GimpleFunction,
                                      IRError, Jump, Move, Phi, Reg, Ret)


def diamond() -> GimpleFunction:
    """entry -> (left|right) -> join."""
    fn = GimpleFunction("diamond", [Reg("x")])
    entry = fn.new_block("entry")
    left = fn.new_block("left")
    right = fn.new_block("right")
    join = fn.new_block("join")
    entry.add(BinOp(Reg("c"), "<", Reg("x"), 10))
    entry.terminator = Branch(Reg("c"), left.label, right.label)
    left.add(Const(Reg("a"), 1))
    left.terminator = Jump(join.label)
    right.add(Const(Reg("a"), 2))
    right.terminator = Jump(join.label)
    join.terminator = Ret(Reg("a"))
    return fn


class TestContainers:
    def test_blocks_get_unique_labels(self):
        fn = GimpleFunction("f")
        b1 = fn.new_block("bb")
        b2 = fn.new_block("bb")
        assert b1.label != b2.label
        assert fn.entry == b1.label

    def test_add_after_terminator_raises(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.terminator = Ret()
        with pytest.raises(IRError):
            block.add(Const(Reg("x"), 1))

    def test_check_catches_missing_terminator(self):
        fn = GimpleFunction("f")
        fn.new_block()
        with pytest.raises(IRError):
            fn.check()

    def test_check_catches_dangling_target(self):
        fn = GimpleFunction("f")
        block = fn.new_block()
        block.terminator = Jump("nowhere")
        with pytest.raises(IRError):
            fn.check()

    def test_bad_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp(Reg("d"), "**", 1, 2)

    def test_instruction_uses(self):
        instr = BinOp(Reg("d"), "+", Reg("a"), 5)
        assert instr.uses() == [Reg("a")]

    def test_replace_uses_substitutes(self):
        instr = BinOp(Reg("d"), "+", Reg("a"), Reg("b"))
        out = instr.replace_uses({Reg("a"): 7})
        assert out.a == 7 and out.b == Reg("b")


class TestCFG:
    def test_successors_predecessors(self):
        fn = diamond()
        succ = successors(fn)
        assert set(succ[fn.entry]) == {"left1", "right2"}
        preds = predecessors(fn)
        assert set(preds["join3"]) == {"left1", "right2"}

    def test_reachable_blocks(self):
        fn = diamond()
        orphan = fn.new_block("orphan")
        orphan.terminator = Ret()
        assert orphan.label not in reachable_blocks(fn)

    def test_remove_unreachable(self):
        fn = diamond()
        orphan = fn.new_block("orphan")
        orphan.terminator = Ret()
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        assert orphan.label not in fn.blocks

    def test_reverse_postorder_entry_first(self):
        fn = diamond()
        order = reverse_postorder(fn)
        assert order[0] == fn.entry
        assert order[-1] == "join3"


class TestDominators:
    def test_diamond_idoms(self):
        fn = diamond()
        dom = compute_dominators(fn)
        assert dom.idom[fn.entry] is None
        assert dom.idom["left1"] == fn.entry
        assert dom.idom["right2"] == fn.entry
        assert dom.idom["join3"] == fn.entry

    def test_dominance_frontier_of_branch_arms(self):
        fn = diamond()
        dom = compute_dominators(fn)
        assert dom.frontier["left1"] == {"join3"}
        assert dom.frontier["right2"] == {"join3"}
        assert dom.frontier[fn.entry] == set()

    def test_dominates_reflexive_and_entry(self):
        fn = diamond()
        dom = compute_dominators(fn)
        assert dom.dominates(fn.entry, "join3")
        assert dom.dominates("left1", "left1")
        assert not dom.dominates("left1", "join3")

    def test_loop_dominators(self):
        fn = GimpleFunction("loop")
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        exit_ = fn.new_block("exit")
        entry.terminator = Jump(header.label)
        header.add(Const(Reg("c"), 1))
        header.terminator = Branch(Reg("c"), body.label, exit_.label)
        body.terminator = Jump(header.label)
        exit_.terminator = Ret()
        dom = compute_dominators(fn)
        assert dom.idom[body.label] == header.label
        assert dom.idom[exit_.label] == header.label
        # back edge: header is in body's dominance frontier
        assert header.label in dom.frontier[body.label]
