"""The paper's §III experiment, reproduced against MGCC.

"In the dead code elimination file, we have found that code related to
the unreachable state still exists, which means that GCC did not remove
the dead code."

These tests compile the *non-optimized* Figure 1 models at ``-Os`` and
inspect the post-DCE GIMPLE dump (the ``-fdump-tree`` analogue) to show
that the unreachable state's actions survive every compiler pass — for
all three implementation patterns — while the model-level optimizer
removes them trivially.
"""

import pytest

from repro.codegen import (NestedSwitchGenerator, StatePatternGenerator,
                           StateTableGenerator)
from repro.compiler import OptLevel, compile_unit
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.optim import optimize

ALL_GENS = [StateTableGenerator, NestedSwitchGenerator,
            StatePatternGenerator]

#: An action that only executes through state S2's generated code.  Note
#: it is S2's *exit* action: generators inline a state's entry actions at
#: the transitions targeting it, and nothing targets S2 — so the code
#: that survives compilation is S2's dispatch arm (exit + effect), which
#: is precisely "the code related to the unreachable state" the paper
#: found in GCC's dead-code-elimination dump.
S2_MARKER = "s2_exit_action"
#: An action only performed inside the never-active composite S3.
S31_MARKER = "s31_enter_action"


@pytest.mark.parametrize("gen_cls", ALL_GENS, ids=lambda g: g.name)
class TestCompilerCannotRemoveUnreachableState:
    def test_s2_code_survives_dce(self, gen_cls):
        machine = flat_machine_with_unreachable_state()
        unit = gen_cls().generate(machine)
        result = compile_unit(unit, OptLevel.OS, capture_dumps=True)
        # The post-DCE dump still calls the unreachable state's action.
        assert S2_MARKER in result.dump_after("dce")
        # ... and it survives into the final program.
        assert S2_MARKER in result.program.dump()

    def test_composite_code_survives_dce(self, gen_cls):
        machine = hierarchical_machine_with_shadowed_composite()
        unit = gen_cls().generate(machine)
        result = compile_unit(unit, OptLevel.OS, capture_dumps=True)
        assert S31_MARKER in result.dump_after("dce")
        assert S31_MARKER in result.program.dump()

    def test_model_level_removal_succeeds_where_compiler_fails(self, gen_cls):
        machine = flat_machine_with_unreachable_state()
        optimized = optimize(machine).optimized
        unit = gen_cls().generate(optimized)
        result = compile_unit(unit, OptLevel.OS)
        assert S2_MARKER not in result.program.dump()

    def test_model_level_removes_whole_submachine(self, gen_cls):
        machine = hierarchical_machine_with_shadowed_composite()
        optimized = optimize(machine).optimized
        unit = gen_cls().generate(optimized)
        result = compile_unit(unit, OptLevel.OS)
        dump = result.program.dump()
        for marker in ("s31_", "s32_", "s33_", "s3_enter"):
            assert marker not in dump

    def test_optimized_model_compiles_smaller(self, gen_cls):
        machine = hierarchical_machine_with_shadowed_composite()
        optimized = optimize(machine).optimized
        size_before = compile_unit(gen_cls().generate(machine),
                                   OptLevel.OS).total_size
        size_after = compile_unit(gen_cls().generate(optimized),
                                  OptLevel.OS).total_size
        assert size_after < size_before


class TestWhyDCECannotHelp:
    """Mechanism checks: the dispatch value is a runtime load, so every
    arm stays CFG-reachable; state-pattern handlers are address-taken."""

    def test_nested_switch_case_arm_is_cfg_reachable(self):
        machine = flat_machine_with_unreachable_state()
        unit = NestedSwitchGenerator().generate(machine)
        result = compile_unit(unit, OptLevel.OS)
        step = result.program.functions["Fig1Flat::step"]
        from repro.compiler.gimple.cfg import reachable_blocks
        # every block of the dispatcher is reachable from its entry
        assert reachable_blocks(step) == set(step.blocks)

    def test_state_pattern_handlers_referenced_by_vtable(self):
        machine = flat_machine_with_unreachable_state()
        unit = StatePatternGenerator().generate(machine)
        result = compile_unit(unit, OptLevel.OS)
        from repro.compiler.gimple.ir import SymbolRef
        vtable_targets = {
            w.symbol
            for obj in result.program.data.values()
            if obj.name.startswith("vtbl.")
            for w in obj.words if isinstance(w, SymbolRef)}
        # The dead state's handler is still a vtable slot => a DCE root.
        assert any("S2" in t for t in vtable_targets)

    def test_state_table_rows_reference_dead_state_actions(self):
        machine = flat_machine_with_unreachable_state()
        unit = StateTableGenerator().generate(machine)
        result = compile_unit(unit, OptLevel.OS)
        dump = result.program.dump()
        # The rows (rodata) still contain entries for S2's transitions.
        assert "Fig1Flat_rows" in dump
        assert S2_MARKER in dump
