"""The compilation-unit DAG: split, content hashes, delta compile, link.

The contract under test is byte-exactness: whatever mix of cache hits,
evictions and corrupted entries the unit tier serves, the relinked
module must equal a monolithic ``compile_program`` of the same lowered
program — the incremental path may only ever be *faster*, never
different.
"""

import copy

import pytest

from repro.codegen import generator_by_name
from repro.compiler import (DeltaStats, LinkError, OptLevel,
                            compile_program, compile_program_incremental,
                            link_units, split_units)
from repro.compiler.frontend.lower import lower_unit
from repro.compiler.units import compile_one_unit, unit_fingerprint
from repro.engine.backends import DiskBackend
from repro.engine.cache import CompileCache
from repro.vm.image import assemble

PATTERNS = ("nested-switch", "flat-switch", "state-table", "state-pattern")


def lowered(machine, pattern):
    return lower_unit(generator_by_name(pattern).generate(machine))


def compiled_bytes(result):
    image = assemble(result.module, target=result.target)
    return bytes(image.text), sorted(image.initial_memory.items())


class TestByteIdentity:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_incremental_equals_monolithic(self, flat_machine, pattern,
                                           any_target):
        mono = compile_program(lowered(flat_machine, pattern),
                               OptLevel.OS, target=any_target)
        inc = compile_program_incremental(lowered(flat_machine, pattern),
                                          OptLevel.OS, target=any_target,
                                          extra_key=pattern)
        assert inc.module.listing() == mono.module.listing()
        assert inc.pass_stats == mono.pass_stats
        assert compiled_bytes(inc) == compiled_bytes(mono)

    @pytest.mark.parametrize("level", list(OptLevel))
    def test_every_level(self, hierarchical_machine, level):
        program_a = lowered(hierarchical_machine, "state-pattern")
        program_b = lowered(hierarchical_machine, "state-pattern")
        mono = compile_program(program_a, level)
        inc = compile_program_incremental(program_b, level,
                                          extra_key="state-pattern")
        assert inc.module.listing() == mono.module.listing()
        assert inc.pass_stats == mono.pass_stats

    def test_warm_cache_is_still_identical(self, flat_machine):
        cache = CompileCache()
        cold = compile_program_incremental(
            lowered(flat_machine, "state-table"), unit_cache=cache)
        stats = DeltaStats()
        warm = compile_program_incremental(
            lowered(flat_machine, "state-table"), unit_cache=cache,
            stats_out=stats)
        assert stats.reused_units == stats.total_units > 0
        assert warm.module.listing() == cold.module.listing()


class TestUnitHashes:
    def test_target_is_part_of_the_hash(self, flat_machine):
        """rt32 and rt16 units must never collide in a shared cache —
        a 16-bit artifact served to a 32-bit link is silent corruption."""
        program = lowered(flat_machine, "state-table")
        plan32 = split_units(program, OptLevel.OS, target="rt32")
        plan16 = split_units(program, OptLevel.OS, target="rt16")
        fps32 = {u.fingerprint for u in plan32.units}
        fps16 = {u.fingerprint for u in plan16.units}
        assert not fps32 & fps16

    def test_shared_cache_across_targets_stays_correct(self, flat_machine):
        """Both targets through ONE unit cache: each link gets its own
        target's artifacts and matches its monolithic compile."""
        cache = CompileCache()
        for target in ("rt32", "rt16", "rt32", "rt16"):
            inc = compile_program_incremental(
                lowered(flat_machine, "state-table"), OptLevel.OS,
                target=target, unit_cache=cache)
            mono = compile_program(lowered(flat_machine, "state-table"),
                                   OptLevel.OS, target=target)
            assert compiled_bytes(inc) == compiled_bytes(mono), target

    def test_level_pattern_and_schema_key_differ(self, flat_machine):
        program = lowered(flat_machine, "nested-switch")
        plan = split_units(program, OptLevel.OS, target="rt32",
                           extra_key="nested-switch")
        unit = plan.units[0]
        dumps = {name: str(fn) for name, fn in program.functions.items()}
        base = unit_fingerprint(unit.name, unit.closure, dumps,
                                OptLevel.OS, plan.target, "nested-switch")
        assert base == unit.fingerprint
        assert base != unit_fingerprint(unit.name, unit.closure, dumps,
                                        OptLevel.O2, plan.target,
                                        "nested-switch")
        assert base != unit_fingerprint(unit.name, unit.closure, dumps,
                                        OptLevel.OS, plan.target, "other")


class TestLinkEdgeCases:
    def test_missing_artifact_is_a_link_error(self, flat_machine):
        program = lowered(flat_machine, "nested-switch")
        plan = split_units(program, OptLevel.OS, target="rt32")
        artifacts = {u.name: compile_one_unit(program, u, OptLevel.OS,
                                              "rt32")
                     for u in plan.units}
        dropped = plan.units[0].name
        del artifacts[dropped]
        with pytest.raises(LinkError, match=dropped.replace("(", "\\(")):
            link_units(program, artifacts, OptLevel.OS, target="rt32")

    def test_all_units_hot_but_link_inputs_changed(self, flat_machine):
        """Data objects are link inputs, not unit inputs: when only the
        data changes, every unit hits and the relink must still carry
        the *current* data — cached bytes would be stale."""
        cache = CompileCache()
        program_a = lowered(flat_machine, "state-table")
        compile_program_incremental(program_a, unit_cache=cache)

        program_b = lowered(flat_machine, "state-table")
        mutated = None
        for data in program_b.data.values():
            for i, word in enumerate(data.words):
                if isinstance(word, int):
                    data.words[i] = word + 1
                    mutated = data.name
                    break
            if mutated:
                break
        assert mutated, "state-table must emit an integer data word"

        stats = DeltaStats()
        inc = compile_program_incremental(program_b, unit_cache=cache,
                                          stats_out=stats)
        assert stats.reused_units == stats.total_units > 0
        mono = compile_program(copy.deepcopy(program_b))
        assert compiled_bytes(inc) == compiled_bytes(mono)

    def test_gc_evicting_units_mid_batch_falls_back(self, flat_machine,
                                                    tmp_path):
        """A GC sweep between two compiles of a batch empties the unit
        store; the second compile must recompile (never link a stale or
        missing artifact) and stay byte-identical."""
        backend = DiskBackend(str(tmp_path / "units"))
        cache = CompileCache(backend)
        first = compile_program_incremental(
            lowered(flat_machine, "state-pattern"), unit_cache=cache)

        report = backend.store_dir.gc(max_bytes=0)
        assert report.dropped > 0

        stats = DeltaStats()
        second = compile_program_incremental(
            lowered(flat_machine, "state-pattern"), unit_cache=cache,
            stats_out=stats)
        assert stats.reused_units == 0
        assert stats.compiled_units == stats.total_units > 0
        assert second.module.listing() == first.module.listing()

    def test_corrupted_cache_entry_falls_back_to_recompile(self,
                                                           flat_machine):
        """A wrong object under a unit key (collision, bit rot) must
        degrade to a recompile, never to a wrong link."""
        cache = CompileCache()
        program = lowered(flat_machine, "nested-switch")
        plan = split_units(program, OptLevel.OS, target="rt32")
        for unit in plan.units:
            cache.get_or_compute(unit.fingerprint,
                                 lambda: "not a unit artifact")
        inc = compile_program_incremental(
            lowered(flat_machine, "nested-switch"), unit_cache=cache)
        mono = compile_program(lowered(flat_machine, "nested-switch"))
        assert inc.module.listing() == mono.module.listing()
