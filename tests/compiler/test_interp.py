"""Tests for the GIMPLE interpreter (the RT32 'board')."""

import pytest

from repro.compiler.gimple.interp import GimpleInterpreter, InterpError
from repro.compiler.gimple.ir import (BinOp, Call, CallIndirect, Const,
                                      DataObject, GimpleFunction, Jump,
                                      LoadAddr, LoadGlobal, Program, Reg,
                                      Ret, StoreGlobal, SymbolRef)


def make_program():
    program = Program("p")
    program.add_data(DataObject("counter", [5], "data"))
    program.add_data(DataObject("table", [SymbolRef("get"), 7], "rodata"))

    get = GimpleFunction("get", [])
    block = get.new_block()
    block.add(LoadGlobal(Reg("v"), "counter"))
    block.terminator = Ret(Reg("v"))
    program.add_function(get)

    bump = GimpleFunction("bump", [Reg("by")])
    block = bump.new_block()
    block.add(LoadGlobal(Reg("v"), "counter"))
    block.add(BinOp(Reg("n"), "+", Reg("v"), Reg("by")))
    block.add(StoreGlobal("counter", 0, Reg("n")))
    block.terminator = Ret(Reg("n"))
    program.add_function(bump)
    return program


class TestMemoryAndCalls:
    def test_global_initializer_visible(self):
        interp = GimpleInterpreter(make_program())
        assert interp.call("get") == 5

    def test_store_global_persists(self):
        interp = GimpleInterpreter(make_program())
        assert interp.call("bump", (3,)) == 8
        assert interp.call("get") == 8
        assert interp.read_global("counter") == 8

    def test_symbol_ref_resolves_to_function_address(self):
        program = make_program()
        interp = GimpleInterpreter(program)
        table_addr = interp.address_of("table")
        fn_addr = interp.load_word(table_addr)
        assert interp.addr_func[fn_addr] == "get"

    def test_indirect_call_through_table(self):
        program = make_program()
        caller = GimpleFunction("caller", [])
        block = caller.new_block()
        block.add(LoadGlobal(Reg("fp"), "table", 0))
        block.add(CallIndirect(Reg("r"), Reg("fp"), ()))
        block.terminator = Ret(Reg("r"))
        program.add_function(caller)
        assert GimpleInterpreter(program).call("caller") == 5

    def test_indirect_call_to_data_raises(self):
        program = make_program()
        bad = GimpleFunction("bad", [])
        block = bad.new_block()
        block.add(LoadAddr(Reg("a"), "counter"))
        block.add(CallIndirect(None, Reg("a"), ()))
        block.terminator = Ret()
        program.add_function(bad)
        with pytest.raises(InterpError):
            GimpleInterpreter(program).call("bad")

    def test_external_calls_logged_and_mapped(self):
        program = make_program()
        seen = []
        caller = GimpleFunction("caller", [])
        block = caller.new_block()
        block.add(Call(Reg("r"), "sensor", (9,)))
        block.terminator = Ret(Reg("r"))
        program.add_function(caller)
        interp = GimpleInterpreter(program,
                                   {"sensor": lambda v: seen.append(v) or 42})
        assert interp.call("caller") == 42
        assert seen == [9]
        assert interp.call_log == [("sensor", (9,))]

    def test_unmapped_external_returns_zero(self):
        program = make_program()
        caller = GimpleFunction("caller", [])
        block = caller.new_block()
        block.add(Call(Reg("r"), "mystery", ()))
        block.terminator = Ret(Reg("r"))
        program.add_function(caller)
        interp = GimpleInterpreter(program)
        assert interp.call("caller") == 0
        assert interp.call_log == [("mystery", ())]

    def test_arity_mismatch_raises(self):
        interp = GimpleInterpreter(make_program())
        with pytest.raises(InterpError):
            interp.call("bump", ())

    def test_division_by_zero_raises(self):
        program = Program("p")
        fn = GimpleFunction("f", [Reg("x")])
        block = fn.new_block()
        block.add(BinOp(Reg("r"), "/", 1, Reg("x")))
        block.terminator = Ret(Reg("r"))
        program.add_function(fn)
        with pytest.raises(InterpError):
            GimpleInterpreter(program).call("f", (0,))

    def test_step_budget_catches_infinite_loop(self):
        program = Program("p")
        fn = GimpleFunction("spin", [])
        block = fn.new_block("b")
        block.terminator = Jump(block.label)
        program.add_function(fn)
        interp = GimpleInterpreter(program, max_steps=100)
        with pytest.raises(InterpError):
            interp.call("spin")

    def test_arithmetic_wraps_to_32_bits(self):
        program = Program("p")
        fn = GimpleFunction("f", [])
        block = fn.new_block()
        block.add(Const(Reg("big"), 0x7FFFFFFF))
        block.add(BinOp(Reg("r"), "+", Reg("big"), 1))
        block.terminator = Ret(Reg("r"))
        program.add_function(fn)
        assert GimpleInterpreter(program).call("f") == -(1 << 31)
