"""Tests for reachability, completion shadowing and the dead-code report."""

import pytest

from repro.analysis import (DeadReason, analyze_completion,
                            analyze_reachability, find_dead_code,
                            is_always_completing, measure_model)
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.uml import StateMachineBuilder, calls


class TestReachabilityFlat:
    def test_s2_unreachable(self):
        info = analyze_reachability(flat_machine_with_unreachable_state())
        assert info.unreachable_states == ("S2",)

    def test_reachable_states_are_live(self):
        m = flat_machine_with_unreachable_state()
        info = analyze_reachability(m)
        assert info.is_reachable(m.find_state("S1"))
        assert info.is_reachable(m.find_state("S3"))

    def test_dead_transition_from_unreachable_source(self):
        m = flat_machine_with_unreachable_state()
        info = analyze_reachability(m)
        dead = {t.describe() for t in info.dead_transitions}
        assert "S2 -e2-> S3" in dead

    def test_clean_machine_has_no_dead_elements(self):
        b = StateMachineBuilder("Clean")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="x")
        b.transition("B", "final", on="y")
        report = find_dead_code(b.build())
        assert report.is_clean

    def test_chain_of_dead_states(self):
        # D1 -> D2 -> D3: none reachable; all reported.
        b = StateMachineBuilder("Chain")
        b.state("A")
        b.state("D1")
        b.state("D2")
        b.state("D3")
        b.initial_to("A")
        b.transition("A", "final", on="ok")
        b.transition("D1", "D2", on="x")
        b.transition("D2", "D3", on="y")
        info = analyze_reachability(b.build())
        assert set(info.unreachable_states) == {"D1", "D2", "D3"}


class TestCompletionShadowing:
    def test_hierarchical_composite_shadowed(self):
        m = hierarchical_machine_with_shadowed_composite()
        info = analyze_completion(m)
        assert "S2" in info.always_completing
        shadows = {t.describe() for t in info.shadowed_transitions}
        assert "S2 -e2-> S3" in shadows

    def test_composite_s3_unreachable_only_with_shadowing(self):
        m = hierarchical_machine_with_shadowed_composite()
        with_shadow = analyze_reachability(m, respect_completion_shadowing=True)
        without = analyze_reachability(m, respect_completion_shadowing=False)
        assert "S3" in with_shadow.unreachable_states
        assert "S3" not in without.unreachable_states

    def test_guarded_completion_does_not_shadow(self):
        b = StateMachineBuilder("G")
        b.attribute("ok", 0)
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.completion("A", "final", guard="ok == 1")
        b.transition("A", "B", on="x")
        m = b.build()
        assert not is_always_completing(m.find_state("A"))
        assert analyze_completion(m).shadowed_transitions == ()

    def test_constant_true_guard_shadows(self):
        b = StateMachineBuilder("CT")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.completion("A", "final", guard="1 < 2")
        b.transition("A", "B", on="x")
        m = b.build()
        assert is_always_completing(m.find_state("A"))

    def test_complementary_guard_pair_shadows(self):
        b = StateMachineBuilder("Pair")
        b.attribute("v", 0)
        b.state("A")
        b.state("B")
        b.state("C")
        b.state("D")
        b.initial_to("A")
        b.completion("A", "B", guard="v > 0")
        b.completion("A", "C", guard="!(v > 0)")
        b.transition("A", "D", on="x")
        m = b.build()
        assert is_always_completing(m.find_state("A"))

    def test_running_composite_not_always_completing(self):
        # A composite with a live region completes only when the region
        # finishes; its event transitions stay live.
        b = StateMachineBuilder("RC")
        sub = b.composite("C")
        sub.state("C1")
        sub.initial_to("C1")
        sub.transition("C1", "final", on="fin")
        b.state("Out")
        b.initial_to("C")
        b.completion("C", "final")
        b.transition("C", "Out", on="leave")
        m = b.build()
        assert not is_always_completing(m.find_state("C"))

    def test_false_guard_transition_is_dead(self):
        b = StateMachineBuilder("FG")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="x", guard="1 > 2")
        b.transition("A", "final", on="y")
        info = analyze_reachability(b.build())
        assert "B" in info.unreachable_states


class TestDeadCodeReport:
    def test_flat_report_reason_no_incoming(self):
        report = find_dead_code(flat_machine_with_unreachable_state())
        (dead,) = report.dead_states
        assert dead.name == "S2"
        assert dead.reason is DeadReason.NO_INCOMING

    def test_hierarchical_report_counts_nested(self):
        report = find_dead_code(hierarchical_machine_with_shadowed_composite())
        composite = next(d for d in report.dead_states if d.name == "S3")
        assert composite.is_composite
        assert composite.nested_state_count == 3
        assert composite.reason is DeadReason.SHADOWED_BY_COMPLETION

    def test_unused_events_detected(self):
        report = find_dead_code(flat_machine_with_unreachable_state())
        assert report.unused_events == ("e2",)

    def test_summary_text(self):
        report = find_dead_code(flat_machine_with_unreachable_state())
        text = report.summary()
        assert "S2" in text and "no incoming" in text

    def test_clean_summary_text(self):
        b = StateMachineBuilder("C")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        assert "clean" in find_dead_code(b.build()).summary()


class TestMetrics:
    def test_flat_metrics_match_paper_description(self):
        # "3 states, 2 pseudo states (initial and final states) and 5
        # transitions"
        m = measure_model(flat_machine_with_unreachable_state())
        assert m.total_states == 3
        assert m.pseudostates + m.final_states == 2
        assert m.transitions == 5

    def test_hierarchical_metrics(self):
        m = measure_model(hierarchical_machine_with_shadowed_composite())
        assert m.composite_states == 1
        assert m.simple_states == 5  # S1, S2, S31, S32, S33
        assert m.max_depth == 2
        assert m.completion_transitions >= 1

    def test_as_dict_round_trip_keys(self):
        m = measure_model(flat_machine_with_unreachable_state())
        d = m.as_dict()
        assert d["states"] == 3
        assert d["transitions"] == 5
