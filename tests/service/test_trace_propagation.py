"""End-to-end tracing across the service wire and worker processes.

The acceptance property of the obs subsystem: one traced batch against
a real 2-worker / 2-shard cluster yields ONE connected trace — client
root span -> server ``service.batch`` span -> per-chunk
``worker.chunk`` spans recorded *inside the worker processes* and
shipped back piggybacked on chunk replies -> per-job
``worker.compile`` spans under those.
"""

import json

import pytest

from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.obs.export import chrome_trace
from repro.obs.trace import (Tracer, configure, get_tracer, set_tracer,
                             span)
from repro.service import ServiceThread
from repro.service.protocol import compile_params


@pytest.fixture
def client_tracer():
    """A private 100%-sampling tracer installed as the process tracer
    for one test (workers spawned by the cluster stay at their own
    ratio 0 — parent-based sampling must carry the trace)."""
    tracer = Tracer(sample_ratio=1.0, process="test-client")
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    store = tmp_path_factory.mktemp("trace-store")
    with ServiceThread(workers=2, shards=2,
                       cache_dir=str(store)) as handle:
        assert handle.wait_workers_ready() == 2
        yield handle


@pytest.fixture(scope="module")
def machines():
    return [generate_machine(WorkloadSpec(n_live=4, events_per_state=2,
                                          seed=seed))
            for seed in (11, 12, 13, 14)]


class TestClusterTracePropagation:
    def test_batch_over_two_workers_is_one_connected_trace(
            self, cluster, machines, client_tracer):
        with cluster.client() as client:
            root = span("test.root")
            with root:
                results = client.submit_batch(
                    [compile_params(m) for m in machines])
        assert len(results) == len(machines)

        spans = client_tracer.drain()
        by_id = {s["span_id"]: s for s in spans}

        # One trace, every span id unique.
        assert {s["trace_id"] for s in spans} == {root.trace_id}
        assert len(by_id) == len(spans)

        # client.batch -> service.batch -> worker.chunk -> worker.compile
        batch = [s for s in spans if s["name"] == "service.batch"]
        assert len(batch) == 1
        client_side = [s for s in spans if s["name"] == "client.batch"]
        assert len(client_side) == 1
        assert batch[0]["parent_id"] == client_side[0]["span_id"]
        assert client_side[0]["parent_id"] == root.span_id

        chunks = [s for s in spans if s["name"] == "worker.chunk"]
        assert chunks, "no worker spans came back over the wire"
        for chunk in chunks:
            assert by_id[chunk["parent_id"]]["name"] == "service.batch"
        # Both worker processes contributed (2 workers, >= 2 chunks).
        worker_pids = {c["pid"] for c in chunks}
        assert len(worker_pids) == 2

        compiles = [s for s in spans if s["name"] == "worker.compile"]
        assert len(compiles) == len(machines)
        for job_span in compiles:
            assert by_id[job_span["parent_id"]]["name"] == "worker.chunk"

        # The whole trace survives a JSON round-trip (wire realism).
        assert json.loads(json.dumps(spans)) == spans

    def test_worker_spans_include_stage_detail(self, cluster, machines,
                                               client_tracer):
        with cluster.client() as client:
            with span("test.root"):
                client.compile_machine(machines[0], pattern="state-table")
        names = {s["name"] for s in client_tracer.drain()}
        assert "service.compile" in names
        assert "worker.chunk" in names
        # Compiler-stage spans recorded inside the worker process.
        assert "cache.lookup" in names

    def test_chrome_export_of_a_distributed_trace(self, cluster,
                                                  machines,
                                                  client_tracer):
        with cluster.client() as client:
            with span("test.root"):
                client.submit_batch(
                    [compile_params(m) for m in machines[:2]])
        spans = client_tracer.drain()
        doc = chrome_trace(spans)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)
        # One metadata lane per process: client (+server, same pid)
        # plus every worker that served a chunk.
        lanes = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert 2 <= len(lanes) <= 3
        json.loads(json.dumps(doc))

    def test_untraced_requests_stay_untraced(self, cluster, machines):
        configure(sample_ratio=0.0)
        get_tracer().clear()
        with cluster.client() as client:
            client.compile_machine(machines[1])
        assert get_tracer().spans() == []
