"""Locality sort (ROADMAP item 5 follow-up): near-duplicates together.

The cluster's batch path sorts deduplicated jobs so mutant chains and
sweep variants of one machine ride one contiguous chunk to one
worker's warm unit cache.  The decisive test simulates the pool
deterministically — one fresh engine per chunk, exactly what a cold
worker is — and measures the unit-cache hit rate the schedule earns:
the sorted schedule must beat the interleaved one on a mutant-chain
corpus, because that reuse is the entire point of the sort.

The pure helpers (dedup, chunk planning, key shape) are pinned
alongside.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.workload import (WorkloadSpec, generate_machine,
                                        mutate_one_transition)
from repro.service.batching import (dedup_params, locality_key,
                                    params_digest, plan_chunks,
                                    sort_for_locality)
from repro.service.protocol import compile_params, job_from_params


def _mutant_chain_corpus(families=4, mutants=3):
    """Round-robin interleaved mutant chains: worst case for a naive
    contiguous split, ideal material for the sort."""
    chains = []
    for family in range(families):
        parent = generate_machine(WorkloadSpec(
            n_live=4, seed=100 + family, name=f"Fam{family}"))
        chain = [parent] + [mutate_one_transition(parent, index)
                            for index in range(mutants)]
        chains.append([compile_params(machine) for machine in chain])
    interleaved = []
    for position in range(mutants + 1):
        for chain in chains:
            interleaved.append(chain[position])
    return interleaved


def _unit_hit_rate(chunks):
    """Run each chunk on a fresh engine (= a cold worker) and return
    the pooled unit-cache hit rate."""
    hits = misses = 0
    for chunk in chunks:
        engine = ExperimentEngine()
        for _digest, params in chunk:
            job = job_from_params(params)
            engine.compile_machine(job.machine, pattern=job.pattern,
                                   level=job.level, target=job.target,
                                   semantics=job.semantics)
        hits += engine.unit_stats.hits
        misses += engine.unit_stats.misses
    total = hits + misses
    return hits / total if total else 0.0


class TestLocalityPaysInUnitHits:
    def test_sorted_chunks_beat_interleaved_on_mutant_chains(self):
        corpus = _mutant_chain_corpus(families=4, mutants=3)
        order, unique = dedup_params(corpus)
        items = list(unique.items())
        n_chunks = 4                          # = families: the clean split

        unsorted_rate = _unit_hit_rate(plan_chunks(items, n_chunks))
        sorted_rate = _unit_hit_rate(
            plan_chunks(sort_for_locality(items), n_chunks))

        # Sorted: each chunk is one family's chain -> mutants reuse the
        # parent's units.  Interleaved: chunks mix families -> cold.
        assert sorted_rate > unsorted_rate, (
            f"sorted {sorted_rate:.2f} <= unsorted {unsorted_rate:.2f}")
        assert sorted_rate >= 0.4             # chains really do share units

    def test_sort_groups_families_contiguously(self):
        corpus = _mutant_chain_corpus(families=3, mutants=2)
        _order, unique = dedup_params(corpus)
        ordered = sort_for_locality(list(unique.items()))
        names = [params["machine"]["name"] for _d, params in ordered]
        # each family's name appears in exactly one contiguous run
        seen = set()
        previous = None
        for name in names:
            if name != previous:
                assert name not in seen, f"{name} split into two runs"
                seen.add(name)
            previous = name


class TestBatchingHelpers:
    def test_dedup_preserves_order_and_folds_duplicates(self):
        machine = generate_machine(WorkloadSpec(n_live=2, seed=1,
                                                name="Dedup"))
        a = compile_params(machine, pattern="nested-switch")
        b = compile_params(machine, pattern="state-table")
        order, unique = dedup_params([a, b, dict(a)])
        assert len(order) == 3 and len(unique) == 2
        assert order[0] == order[2] == params_digest(a)

    def test_digest_is_canonical(self):
        machine = generate_machine(WorkloadSpec(n_live=2, seed=2,
                                                name="Canon"))
        params = compile_params(machine)
        shuffled = dict(reversed(list(params.items())))
        assert params_digest(params) == params_digest(shuffled)

    def test_plan_chunks_is_a_partition(self):
        items = list(range(10))
        for n_chunks in (1, 3, 4, 10, 25):
            chunks = plan_chunks(items, n_chunks)
            assert [x for chunk in chunks for x in chunk] == items
            assert len(chunks) == min(10, n_chunks)
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1
        assert plan_chunks([], 4) == []

    def test_locality_key_orders_levels_within_a_machine(self):
        machine = generate_machine(WorkloadSpec(n_live=2, seed=3,
                                                name="Key"))
        o0 = compile_params(machine, level="O0")
        o2 = compile_params(machine, level="O2")
        other = compile_params(generate_machine(WorkloadSpec(
            n_live=2, seed=4, name="Other")), level="O0")
        ordered = sort_for_locality([
            (params_digest(p), p) for p in (other, o2, o0)])
        names = [p["machine"]["name"] for _d, p in ordered]
        assert names == ["Key", "Key", "Other"]
