"""Metrics registry: histogram math and the scrape-document schema."""

import pytest

from repro.service.metrics import (METRICS_SCHEMA_VERSION,
                                   LatencyHistogram, ServiceMetrics)


class TestLatencyHistogram:
    def test_empty_reports_none(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) is None
        assert histogram.mean_ms is None
        assert histogram.as_dict()["count"] == 0

    def test_percentile_brackets_the_samples(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.010)          # 10 ms
        p50 = histogram.percentile(0.50)
        # bucketed: the answer is the covering bucket's upper bound,
        # within one x1.35 step of the true value.
        assert 10.0 <= p50 <= 10.0 * 1.35
        assert histogram.as_dict()["count"] == 100
        assert histogram.mean_ms == pytest.approx(10.0, rel=1e-6)

    def test_tail_quantile_lands_in_the_tail(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(1.0)                # one 1 s outlier
        assert histogram.percentile(0.50) < 5.0
        assert histogram.percentile(0.99) < 5.0      # 99/100 are 1 ms
        p999 = histogram.percentile(0.999)
        assert p999 >= 1000.0                # the outlier's bucket

    def test_out_of_range_samples_still_count(self):
        histogram = LatencyHistogram()
        histogram.record(10_000.0)           # beyond the last bound
        assert histogram.as_dict()["count"] == 1
        assert histogram.percentile(0.5) is not None


class TestServiceMetricsQueue:
    def test_depth_and_high_water(self):
        metrics = ServiceMetrics(queue_limit=8)
        metrics.enqueue(3)
        metrics.enqueue(2)
        assert metrics.queue_depth == 5 and metrics.queue_high_water == 5
        metrics.dequeue(4, busy_seconds=1.5)
        assert metrics.queue_depth == 1
        assert metrics.queue_high_water == 5          # sticky
        assert metrics.jobs_done == 4
        assert metrics.busy_seconds == pytest.approx(1.5)

    def test_utilization_bounds(self):
        metrics = ServiceMetrics()
        assert metrics.utilization(0) is None
        metrics.dequeue(1, busy_seconds=10_000.0)     # absurd busy time
        assert metrics.utilization(2) == 1.0          # capped


class TestPayloadSchema:
    def test_shape(self):
        metrics = ServiceMetrics(queue_limit=16)
        metrics.observe("compile", 0.01, "ok")
        metrics.observe("compile", 0.02, "error")
        metrics.observe("batch", 0.50, "busy")
        metrics.enqueue(2)
        metrics.dequeue(2, busy_seconds=0.3)
        metrics.reject()
        doc = metrics.payload(workers=2,
                              pool_stats={"deaths": 1, "restarts": 1,
                                          "retried_chunks": 2,
                                          "failed_chunks": 0},
                              cache={"hits": 5, "misses": 3,
                                     "disk_hits": 1, "hit_rate": 0.625},
                              shard_sizes={"shard-00": 4, "shard-01": 4})
        assert doc["schema"] == METRICS_SCHEMA_VERSION
        assert doc["uptime_s"] >= 0.0
        compile_block = doc["endpoints"]["compile"]
        assert compile_block["count"] == 2
        assert compile_block["errors"] == 1
        assert doc["endpoints"]["batch"]["busy"] == 1
        assert doc["queue"] == {"depth": 0, "limit": 16,
                                "high_water": 2, "busy_rejections": 1}
        workers = doc["workers"]
        assert workers["configured"] == 2
        assert workers["mode"] == "process-pool"
        assert workers["jobs_done"] == 2
        assert workers["deaths"] == 1 and workers["retried_chunks"] == 2
        assert 0.0 < workers["utilization"] <= 1.0
        assert doc["cache"]["hit_rate"] == 0.625
        assert doc["shards"] == {"shard-00": 4, "shard-01": 4}

    def test_in_process_mode_omits_shards(self):
        doc = ServiceMetrics().payload(workers=0)
        assert doc["workers"]["mode"] == "in-process"
        assert doc["workers"]["utilization"] is None
        assert "shards" not in doc


class TestSchemaV2Compat:
    """Schema bump 1 -> 2: every v1 key survives; v2 adds "registry"."""

    V1_TOP_KEYS = {"schema", "uptime_s", "endpoints", "queue", "workers",
                   "cache"}
    V1_ENDPOINT_KEYS = {"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
                        "errors", "busy"}

    def _doc(self):
        metrics = ServiceMetrics(queue_limit=8)
        metrics.observe("compile", 0.02, "ok")
        metrics.enqueue(1)
        metrics.dequeue(1, busy_seconds=0.01)
        return metrics.payload(
            workers=2,
            pool_stats={"deaths": 0, "restarts": 0, "retried_chunks": 0,
                        "failed_chunks": 0},
            cache={"hits": 1, "misses": 0, "disk_hits": 0,
                   "hit_rate": 1.0},
            shard_sizes={"shard-00": 1})

    def test_schema_is_2(self):
        assert METRICS_SCHEMA_VERSION == 2
        assert self._doc()["schema"] == 2

    def test_all_v1_keys_survive(self):
        doc = self._doc()
        assert self.V1_TOP_KEYS <= set(doc)
        assert "shards" in doc
        assert self.V1_ENDPOINT_KEYS <= set(doc["endpoints"]["compile"])
        assert set(doc["queue"]) == {"depth", "limit", "high_water",
                                     "busy_rejections"}
        for key in ("configured", "mode", "jobs_done", "utilization",
                    "deaths", "restarts", "retried_chunks",
                    "failed_chunks"):
            assert key in doc["workers"], key

    def test_v2_adds_registry_section(self):
        registry = self._doc()["registry"]
        latency = registry["service_request_seconds"]
        assert latency["kind"] == "histogram"
        assert latency["series"]["op=compile"]["count"] == 1
        requests = registry["service_requests_total"]
        assert requests["series"]["op=compile,outcome=ok"] == 1
        assert registry["service_queue_depth"]["kind"] == "gauge"

    def test_registry_merges_process_wide_metrics(self):
        from repro.obs.metrics import REGISTRY
        REGISTRY.counter("test_only_probe_total").inc(3)
        try:
            registry = self._doc()["registry"]
            assert registry["test_only_probe_total"]["series"][""] == 3
        finally:
            REGISTRY._metrics.pop("test_only_probe_total", None)
