"""The compile service end to end: unix socket and TCP, identical
results to in-process engine runs, batching, coalescing, stats."""

import asyncio
import threading

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.service import (CompileService, ServiceClient, ServiceError,
                           ServiceThread, compile_params,
                           compile_result_payload, job_from_params)


@pytest.fixture(scope="module")
def machine():
    return flat_machine_with_unreachable_state()


@pytest.fixture(scope="module")
def hierarchical():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture()
def handle():
    with ServiceThread(ExperimentEngine()) as running:
        yield running


class TestEndToEnd:
    def test_ping(self, handle):
        with handle.client() as client:
            result = client.ping()
        assert result["pong"] is True and "version" in result

    def test_compile_identical_to_in_process(self, handle, machine):
        """The acceptance criterion: submit-via-client returns results
        identical to an in-process ExperimentEngine run."""
        local = ExperimentEngine()
        job = job_from_params(
            compile_params(machine, pattern="state-table", target="rt16",
                           want_asm=True))
        expected = compile_result_payload(
            job, local.compile_machine(machine, pattern="state-table",
                                       target="rt16"), want_asm=True)
        with handle.client() as client:
            served = client.compile_machine(machine, pattern="state-table",
                                            target="rt16", want_asm=True)
        assert served == expected

    def test_batch_order_and_dedup(self, handle, machine, hierarchical):
        jobs = [compile_params(machine, pattern="nested-switch"),
                compile_params(hierarchical, pattern="state-table"),
                compile_params(machine, pattern="nested-switch")]
        with handle.client() as client:
            response = client.request("batch", jobs=jobs)
        results = response["results"]
        assert len(results) == 3
        assert results[0] == results[2]
        assert results[1]["machine"] == hierarchical.name
        assert response["deduplicated"] == 1
        assert handle.service.engine.stats.misses == 2

    def test_compiles_share_the_engine_cache(self, handle, machine):
        with handle.client() as client:
            client.compile_machine(machine)
            client.compile_machine(machine)
        stats = handle.service.engine.stats
        assert stats.misses == 1 and stats.hits == 1

    def test_per_client_stats(self, handle, machine):
        with handle.client() as first:
            first.compile_machine(machine)
            with handle.client() as second:
                second.ping()
                stats = second.stats()
        clients = stats["clients"]
        assert len(clients) == 2
        assert clients["client-1"]["compiles"] == 1
        assert clients["client-2"]["requests"] == 2
        assert stats["service"]["connections"] == 2
        assert stats["engine"]["misses"] == 1

    def test_errors_do_not_kill_the_connection(self, handle, machine):
        with handle.client() as client:
            with pytest.raises(ServiceError, match="unknown operation"):
                client.request("definitely-not-an-op")
            with pytest.raises(ServiceError):
                client.request("compile", machine={"format": 99})
            assert client.ping()["pong"] is True

    def test_tcp_mode(self, machine):
        with ServiceThread(ExperimentEngine(), port=0) as running:
            assert running.address.startswith("tcp:")
            with ServiceClient(host="127.0.0.1",
                               port=running.port) as client:
                payload = client.compile_machine(machine)
        assert payload["total_size"] > 0

    def test_service_over_persistent_store(self, machine, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ServiceThread(ExperimentEngine(cache_dir=cache_dir)) as run:
            with run.client() as client:
                first = client.compile_machine(machine)
        # a later service (new process in real life) is warm from disk
        warm_engine = ExperimentEngine(cache_dir=cache_dir)
        with ServiceThread(warm_engine) as run:
            with run.client() as client:
                second = client.compile_machine(machine)
        assert second == first
        assert warm_engine.stats.disk_hits == 1
        assert warm_engine.stats.misses == 0


class TestCoalescing:
    def test_identical_inflight_requests_coalesce(self, machine):
        """Two concurrent identical requests -> one computation, one
        coalesced hit."""
        engine = ExperimentEngine()
        release = threading.Event()
        computed = []
        original = engine.compile_machine

        def slow_compile(*args, **kwargs):
            release.wait(30)
            computed.append(1)
            return original(*args, **kwargs)

        engine.compile_machine = slow_compile
        service = CompileService(engine)
        params = compile_params(machine)

        async def scenario():
            from repro.service.server import ClientStats
            client = ClientStats()
            request = dict(params)
            first = asyncio.ensure_future(
                service._compile_one(request, client))
            # let the first request install its in-flight task
            while not service._inflight:
                await asyncio.sleep(0.01)
            second = asyncio.ensure_future(
                service._compile_one(dict(params), client))
            while client.compiles < 2:
                await asyncio.sleep(0.01)
            release.set()
            results = await asyncio.gather(first, second)
            return client, results

        client, results = asyncio.run(scenario())
        assert results[0] == results[1]
        assert len(computed) == 1, "coalesced request must not recompute"
        assert client.coalesced == 1
        assert service.totals.coalesced == 1
        assert not service._inflight, "in-flight table must drain"
