"""Cluster mode: worker pool, sharded store, fault injection.

One module-scoped 2-worker/2-shard cluster (spawning processes is the
expensive part) backs every test here:

* byte-identity — cluster-served payloads equal in-process compiles;
* kill-a-worker-mid-batch — the chunk is retried on a live worker and
  the result is *still* byte-identical; fault counters surface it;
* crash-loop worker — retries exhaust gracefully: the one poisoned
  request gets an error reply, the service keeps serving, and
  ``failed_chunks`` records the abandonment;
* stats/metrics endpoints report the cluster view (aggregated worker
  cache counters, shard sizes).
"""

import json
import os

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.workload import (WorkloadSpec, generate_machine,
                                        mutate_one_transition)
from repro.service import ServiceError, ServiceThread
from repro.service.protocol import (compile_params, compile_result_payload,
                                    job_from_params)


def _canonical(payload):
    return json.dumps(payload, sort_keys=True)


def _expected(params, engine):
    params = {key: value for key, value in params.items()
              if key != "chaos"}
    job = job_from_params(params)
    result = engine.compile_machine(job.machine, pattern=job.pattern,
                                    level=job.level, target=job.target,
                                    semantics=job.semantics)
    return compile_result_payload(job, result,
                                  want_asm=bool(params.get("want_asm")))


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    store = tmp_path_factory.mktemp("cluster-store")
    with ServiceThread(workers=2, shards=2, cache_dir=str(store),
                       queue_limit=64, allow_chaos=True) as handle:
        assert handle.wait_workers_ready() == 2
        yield handle


@pytest.fixture(scope="module")
def reference():
    return ExperimentEngine()


@pytest.fixture(scope="module")
def machines():
    parent = generate_machine(WorkloadSpec(n_live=4, seed=41,
                                           name="Cluster"))
    return [parent,
            mutate_one_transition(parent, 0),
            generate_machine(WorkloadSpec(n_live=3, seed=42,
                                          name="ClusterB"))]


class TestByteIdentity:
    def test_single_compile_matches_in_process(self, cluster, reference,
                                               machines):
        params = compile_params(machines[0], pattern="state-table",
                                level="O2", want_asm=True)
        with cluster.client() as client:
            served = client.request("compile", **params)
        assert _canonical(served) == _canonical(
            _expected(params, reference))
        assert "asm" in served

    def test_batch_matches_in_process_in_order(self, cluster, reference,
                                               machines):
        batch = [compile_params(machine, pattern=pattern)
                 for machine in machines
                 for pattern in ("nested-switch", "state-table")]
        batch.append(dict(batch[0]))          # exact duplicate
        with cluster.client() as client:
            result = client.request("batch", jobs=batch)
        assert len(result["results"]) == len(batch)
        assert result["deduplicated"] == 1
        for params, served in zip(batch, result["results"]):
            assert _canonical(served) == _canonical(
                _expected(params, reference))


class TestWorkerDeath:
    def test_killed_worker_chunk_is_retried_byte_identically(
            self, cluster, reference, machines, tmp_path):
        marker = os.path.join(str(tmp_path), "die-once")
        batch = [compile_params(machines[2], pattern="nested-switch"),
                 compile_params(machines[2], pattern="state-table")]
        batch[1]["chaos"] = {"exit_before": marker}   # kills one worker
        with cluster.client() as client:
            result = client.request("batch", jobs=batch)
            metrics = client.metrics()
        assert os.path.exists(marker)         # the death really happened
        for params, served in zip(batch, result["results"]):
            assert _canonical(served) == _canonical(
                _expected(params, reference))
        workers = metrics["workers"]
        assert workers["deaths"] >= 1
        assert workers["restarts"] >= 1
        assert workers["retried_chunks"] >= 1

    def test_crash_loop_degrades_gracefully(self, cluster, machines):
        poisoned = compile_params(machines[0], pattern="state-table")
        poisoned["chaos"] = {"exit_always": True}
        with cluster.client() as client:
            before = client.metrics()["workers"]["failed_chunks"]
            with pytest.raises(ServiceError):
                client.request("compile", **poisoned)
            after = client.metrics()["workers"]["failed_chunks"]
            assert after > before             # abandonment is recorded
            # the service survives and keeps serving
            payload = client.compile_machine(machines[0])
            assert payload["total_size"] > 0


class TestClusterIntrospection:
    def test_stats_aggregates_worker_caches(self, cluster, machines):
        with cluster.client() as client:
            client.compile_machine(machines[0])
            stats = client.stats()
        engine_block = stats["engine"]
        assert engine_block["lookups"] >= 1
        assert set(stats["units"]) == {"hits", "disk_hits", "misses",
                                       "reused", "compiled"}

    def test_metrics_reports_shards_and_schema(self, cluster):
        with cluster.client() as client:
            metrics = client.metrics()
        assert metrics["schema"] == 2
        assert metrics["workers"]["configured"] == 2
        assert metrics["workers"]["mode"] == "process-pool"
        assert sorted(metrics["shards"]) == ["shard-00", "shard-01"]
        assert sum(metrics["shards"].values()) > 0
        assert metrics["queue"]["limit"] == 64

    def test_engine_and_spec_are_mutually_exclusive(self):
        from repro.service import CompileService
        with pytest.raises(ValueError):
            CompileService(ExperimentEngine(), workers=2)
