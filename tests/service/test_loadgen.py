"""Load generator: corpus determinism, screening, measurement, verify."""

import json

import pytest

from repro.engine import ExperimentEngine
from repro.service import (LoadgenSpec, ServiceThread, build_corpus,
                           run_load, verify_payloads)

_SMALL = LoadgenSpec(machines=1, mutants=1, fuzz_machines=2)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(_SMALL)


class TestCorpus:
    def test_deterministic_in_the_seed(self, corpus):
        again = build_corpus(_SMALL)
        assert json.dumps(corpus, sort_keys=True) == \
            json.dumps(again, sort_keys=True)
        different = build_corpus(LoadgenSpec(
            machines=1, mutants=1, fuzz_machines=2, seed=999))
        assert json.dumps(corpus, sort_keys=True) != \
            json.dumps(different, sort_keys=True)

    def test_screening_leaves_only_compilable_jobs(self, corpus):
        assert len(corpus) > 0
        # screened corpus must replay divergence-free on a fresh engine
        engine = ExperimentEngine()
        from repro.service.protocol import job_from_params
        for params in corpus:
            job = job_from_params(params)
            engine.compile_machine(job.machine, pattern=job.pattern,
                                   level=job.level, target=job.target,
                                   semantics=job.semantics)

    def test_mixes_families_duplicates_and_fuzz(self):
        spec = LoadgenSpec(machines=2, mutants=2, fuzz_machines=2,
                           duplicate_fraction=0.5)
        jobs = build_corpus(spec, screen=False)
        names = {params["machine"]["name"] for params in jobs}
        assert any(name.startswith("LoadFam") for name in names)
        assert any(name.startswith("LoadFuzz") for name in names)
        digests = [json.dumps(params, sort_keys=True) for params in jobs]
        assert len(set(digests)) < len(digests)   # duplicates exist


class TestRunLoadAndVerify:
    def test_measures_and_returns_payloads_in_order(self, corpus):
        with ServiceThread(ExperimentEngine()) as handle:
            report = run_load(handle.client, corpus, batch_size=3,
                              clients=2)
        assert report.jobs == len(corpus)
        assert report.unique_jobs <= report.jobs
        assert report.jobs_per_sec > 0
        assert report.p50_ms <= report.p90_ms <= report.p99_ms
        assert len(report.payloads) == len(corpus)
        assert all(payload is not None for payload in report.payloads)
        assert verify_payloads(corpus, report.payloads) == []
        summary = report.as_dict()
        assert "payloads" not in summary      # summaries stay small
        assert summary["busy_retries"] == 0

    def test_verify_flags_a_tampered_payload(self, corpus):
        with ServiceThread(ExperimentEngine()) as handle:
            report = run_load(handle.client, corpus, batch_size=4,
                              clients=1)
        tampered = list(report.payloads)
        tampered[1] = dict(tampered[1], total_size=-1)
        divergent = verify_payloads(corpus, tampered)
        assert divergent == [1]

    def test_client_error_propagates(self, corpus):
        def broken_client():
            raise ConnectionRefusedError("nobody home")
        with pytest.raises(ConnectionRefusedError):
            run_load(broken_client, corpus[:2], batch_size=1, clients=1)
