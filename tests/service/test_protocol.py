"""Wire format: level parsing, semantics round-trip, job payloads."""

import pytest

from repro.compiler import OptLevel
from repro.engine import ExperimentEngine
from repro.experiments.models import flat_machine_with_unreachable_state
from repro.semantics import SemanticsConfig
from repro.service import (compile_params, compile_result_payload,
                           job_from_params, parse_opt_level,
                           semantics_from_dict, semantics_to_dict)
from repro.service.protocol import decode_message, encode_message
from repro.semantics.variation import UML_DEFAULT_SEMANTICS


@pytest.fixture(scope="module")
def machine():
    return flat_machine_with_unreachable_state()


class TestFraming:
    def test_roundtrip(self):
        message = {"id": 3, "op": "compile", "pattern": "state-table"}
        assert decode_message(encode_message(message)) == message

    def test_one_line_per_message(self):
        assert encode_message({"id": 1}).count(b"\n") == 1

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_message(b"[1, 2, 3]\n")


class TestOptLevelParsing:
    @pytest.mark.parametrize("text,expected", [
        ("-Os", OptLevel.OS), ("Os", OptLevel.OS), ("OS", OptLevel.OS),
        ("-O0", OptLevel.O0), ("O2", OptLevel.O2),
        (None, OptLevel.OS), (OptLevel.O1, OptLevel.O1),
    ])
    def test_accepted_forms(self, text, expected):
        assert parse_opt_level(text) is expected

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="-O7"):
            parse_opt_level("-O7")


class TestSemanticsRoundTrip:
    def test_default(self):
        data = semantics_to_dict(UML_DEFAULT_SEMANTICS)
        assert semantics_from_dict(data) == UML_DEFAULT_SEMANTICS

    def test_non_default_points_survive(self):
        config = SemanticsConfig(completion_priority=False,
                                 max_run_to_completion_steps=50)
        assert semantics_from_dict(semantics_to_dict(config)) == config

    def test_empty_means_default(self):
        assert semantics_from_dict(None) == UML_DEFAULT_SEMANTICS
        assert semantics_from_dict({}) == UML_DEFAULT_SEMANTICS


class TestJobRoundTrip:
    def test_params_rebuild_the_same_job(self, machine):
        params = compile_params(machine, pattern="state-table",
                                level="O2", target="rt16")
        job = job_from_params(params)
        assert job.pattern == "state-table"
        assert job.level is OptLevel.O2
        assert job.target == "rt16"
        # Content-addressing survives the wire: the rebuilt machine
        # fingerprints identically to the original object.
        from repro.engine import compile_fingerprint
        assert job.fingerprint() == compile_fingerprint(
            machine, "state-table", OptLevel.O2, "rt16")

    def test_payload_is_json_safe_and_complete(self, machine):
        import json
        engine = ExperimentEngine()
        job = job_from_params(compile_params(machine))
        result = engine.compile_machine(machine)
        payload = compile_result_payload(job, result, want_asm=True)
        json.dumps(payload)                       # JSON-serializable
        assert payload["total_size"] == result.total_size
        assert payload["asm"] == result.module.listing()
        assert payload["fingerprint"] == job.fingerprint()
        assert set(payload) >= {"machine", "pattern", "level", "target",
                                "text_size", "function_sizes",
                                "pass_stats"}
