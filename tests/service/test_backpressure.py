"""Bounded-queue backpressure: immediate busy replies, client backoff.

A slow-engine stub saturates a tiny queue; the contract under test:

* a request that would exceed the bound is answered ``busy`` within a
  deadline — *immediately*, not after queueing behind slow work;
* a client with backoff retries absorbs busy replies and eventually
  drains its whole batch;
* a single batch larger than the entire queue is rejected
  non-retryably (waiting could never admit it);
* rejections and high-water marks land in the metrics document.
"""

import threading
import time

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.service import ServiceBusy, ServiceThread
from repro.service.protocol import compile_params


class SlowEngine(ExperimentEngine):
    """Every compile takes >= ``delay`` seconds (cache bypass included:
    distinct machines below keep every compile a miss)."""

    delay = 0.4

    def compile_machine(self, *args, **kwargs):
        time.sleep(self.delay)
        return super().compile_machine(*args, **kwargs)


@pytest.fixture()
def machines():
    return [generate_machine(WorkloadSpec(n_live=2, seed=seed,
                                          name=f"BP{seed}"))
            for seed in range(8)]


@pytest.fixture()
def saturated(machines):
    """A queue_limit=2 server with both slots held by slow compiles."""
    with ServiceThread(SlowEngine(), queue_limit=2) as handle:
        holders = []
        for index in range(2):
            def hold(i=index):
                with handle.client(busy_retries=0) as client:
                    client.compile_machine(machines[i])
            thread = threading.Thread(target=hold, daemon=True)
            thread.start()
            holders.append(thread)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with handle.client() as client:
                if client.metrics()["queue"]["depth"] >= 2:
                    break
            time.sleep(0.01)
        else:
            pytest.fail("queue never saturated")
        yield handle
        for thread in holders:
            thread.join(timeout=10)


class TestBusyReplies:
    def test_busy_reply_arrives_within_deadline(self, saturated,
                                                machines):
        with saturated.client(busy_retries=0) as client:
            began = time.perf_counter()
            with pytest.raises(ServiceBusy):
                client.compile_machine(machines[2])
            elapsed = time.perf_counter() - began
        # the reply must not have queued behind ~0.4 s compiles
        assert elapsed < 0.2, f"busy reply took {elapsed:.3f}s"

    def test_backoff_client_eventually_drains(self, saturated, machines):
        with saturated.client(busy_retries=30,
                              busy_backoff=0.05) as client:
            # every slot is held; backoff must carry all three singles
            # through as the slow compiles finish
            payloads = [client.compile_machine(machine)
                        for machine in machines[2:5]]
            assert all(p["total_size"] > 0 for p in payloads)
            assert client.busy_retries_used >= 1
            metrics = client.metrics()
        assert metrics["queue"]["busy_rejections"] >= 1
        assert metrics["queue"]["high_water"] <= 2

    def test_oversized_batch_is_rejected_non_retryably(self, saturated,
                                                       machines):
        with saturated.client(busy_retries=50) as client:
            began = time.perf_counter()
            with pytest.raises(ServiceBusy):
                client.submit_batch([compile_params(machine)
                                     for machine in machines])   # 8 > 2
            elapsed = time.perf_counter() - began
            # non-retryable: no backoff loop, instant rejection
            assert elapsed < 0.2
            assert client.busy_retries_used == 0


class TestUnboundedDefault:
    def test_no_limit_never_rejects(self, machines):
        with ServiceThread(ExperimentEngine()) as handle:
            with handle.client(busy_retries=0) as client:
                results = client.submit_batch(
                    [compile_params(machine) for machine in machines])
                assert len(results) == len(machines)
                metrics = client.metrics()
        assert metrics["queue"]["limit"] is None
        assert metrics["queue"]["busy_rejections"] == 0
