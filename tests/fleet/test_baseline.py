"""The interpreter baseline must time dispatch only.

``run_fleet_throughput`` used to construct and ``start()`` each
interpreter instance *inside* the timed region, charging per-instance
setup to the baseline and inflating the reported fleet speedup.  The
pinned test here instruments the injectable clock and the interpreter
to prove the timed window contains nothing but ``dispatch`` calls.
"""

import pytest

from repro.experiments.dynamics import (FleetThroughputRow,
                                        run_fleet_throughput)
from repro.fleet import interpreter_dispatch_rate
from repro.semantics.runtime import MachineInstance
from repro.uml import StateMachineBuilder


def tiny_machine():
    b = StateMachineBuilder("Tiny")
    b.state("A")
    b.state("B")
    b.initial_to("A")
    b.transition("A", "B", on="go")
    b.transition("B", "A", on="back")
    return b.build()


class TestDispatchOnlyTiming:
    def test_timed_region_contains_only_dispatches(self, monkeypatch):
        log = []
        orig_init = MachineInstance.__init__
        orig_start = MachineInstance.start
        orig_dispatch = MachineInstance.dispatch
        monkeypatch.setattr(MachineInstance, "__init__",
                            lambda self, *a, **k: (log.append("construct"),
                                                   orig_init(self, *a, **k))[1])
        monkeypatch.setattr(MachineInstance, "start",
                            lambda self, *a, **k: (log.append("start"),
                                                   orig_start(self, *a, **k))[1])
        monkeypatch.setattr(MachineInstance, "dispatch",
                            lambda self, *a, **k: (log.append("dispatch"),
                                                   orig_dispatch(self, *a, **k))[1])

        ticks = iter([10.0, 14.0])

        def clock():
            log.append("tick")
            return next(ticks)

        rate = interpreter_dispatch_rate(tiny_machine(), ["go", "back"],
                                         sample=3, clock=clock)
        first, second = log.index("tick"), len(log) - 1 - \
            log[::-1].index("tick")
        assert log[first + 1:second] == ["dispatch"] * 6
        assert "construct" not in log[first:]
        assert "start" not in log[first:]
        assert rate == pytest.approx(6 / 4.0)

    def test_zero_sample_rate_is_zero(self):
        assert interpreter_dispatch_rate(tiny_machine(), ["go"], 0) == 0.0

    def test_zero_elapsed_rate_is_zero(self):
        assert interpreter_dispatch_rate(tiny_machine(), ["go"], 1,
                                         clock=lambda: 5.0) == 0.0

    def test_throughput_harness_uses_the_helper(self, monkeypatch):
        calls = {}

        def fake_rate(machine, events, sample, **kwargs):
            calls["args"] = (machine.name, list(events), sample)
            return 123.0

        import repro.fleet.baseline as baseline
        monkeypatch.setattr(baseline, "interpreter_dispatch_rate",
                            fake_rate)
        row = run_fleet_throughput(tiny_machine(), n_instances=8,
                                   n_events=5, n_shards=1,
                                   interp_sample=4)
        assert calls["args"][0] == "Tiny"
        assert calls["args"][2] == 4
        assert row.interp_events_per_sec == 123.0


class TestSpeedupRendering:
    def row(self, interp):
        return FleetThroughputRow(
            machine_name="M", instances=10, shards=1, stream_events=5,
            lane_events=50, fast_fraction=1.0, events_per_sec=1000.0,
            interp_events_per_sec=interp)

    def test_speedup_is_ratio(self):
        assert self.row(100.0).speedup == pytest.approx(10.0)
        assert self.row(100.0).speedup_display == "10.0x"

    def test_zero_baseline_is_not_infinite(self):
        row = self.row(0.0)
        assert row.speedup is None
        assert row.speedup_display == "n/a"

    def test_zero_baseline_survives_json(self):
        import json
        row = self.row(0.0)
        payload = json.dumps({"speedup": row.speedup})
        assert json.loads(payload)["speedup"] is None


class TestSmokeJsonGuard:
    def test_smoke_json_never_emits_infinity(self, monkeypatch, capsys):
        import repro.fleet.__main__ as fleet_main
        monkeypatch.setattr(fleet_main, "interpreter_dispatch_rate",
                            lambda *a, **k: 0.0)
        code = fleet_main.main(["smoke", "--instances", "16",
                                "--events", "4", "--shards", "1",
                                "--json"])
        out = capsys.readouterr().out
        assert code == 0
        result = __import__("json").loads(out)   # valid JSON, no Infinity
        assert result["speedup_vs_interp"] is None

    def test_smoke_speedup_floor_fails_without_baseline(self, monkeypatch,
                                                        capsys):
        import repro.fleet.__main__ as fleet_main
        monkeypatch.setattr(fleet_main, "interpreter_dispatch_rate",
                            lambda *a, **k: 0.0)
        code = fleet_main.main(["smoke", "--instances", "16",
                                "--events", "4", "--shards", "1",
                                "--min-speedup", "2"])
        err = capsys.readouterr().err
        assert code == 1
        assert "n/a" in err
