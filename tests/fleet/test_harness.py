"""The sharded fleet harness: routing, accounting, reports."""

import pytest

from repro.fleet import FleetHarness, compile_table


class TestRouting:
    def test_broadcast_every_lane_sees_every_event(self, flat_machine):
        harness = FleetHarness(flat_machine, n_instances=100, n_shards=4,
                               batch_size=8, routing="broadcast")
        harness.start()
        report = harness.run(["e1", "e3", "e1", "e4"])
        assert report.lane_events == 100 * 4
        assert harness.finals() == 100

    def test_round_robin_splits_the_stream(self, flat_machine):
        harness = FleetHarness(flat_machine, n_instances=8, n_shards=4,
                               batch_size=2, routing="round-robin")
        harness.start()
        report = harness.run(["e1"] * 8)
        # each shard received 2 of the 8 events, applied to all its lanes
        assert sum(s.events_routed for s in report.shards) == 8

    def test_unknown_routing_rejected(self, flat_machine):
        with pytest.raises(ValueError):
            FleetHarness(flat_machine, n_instances=4, routing="hash")


class TestSharding:
    def test_lanes_split_across_shards(self, flat_machine):
        harness = FleetHarness(flat_machine, n_instances=10, n_shards=4)
        assert harness.n_lanes == 10
        report = harness.start().run([])
        lanes = [shard.lanes for shard in report.shards]
        assert sum(lanes) == 10
        assert max(lanes) - min(lanes) <= 1

    def test_shards_clamped_to_instances(self, flat_machine):
        harness = FleetHarness(flat_machine, n_instances=2, n_shards=16)
        assert harness.n_shards <= 2

    def test_heterogeneous_fleet(self, flat_machine, hierarchical_machine):
        harness = FleetHarness([(flat_machine, 6),
                                (hierarchical_machine, 6)],
                               n_shards=2, routing="broadcast")
        harness.start()
        assert harness.n_lanes == 12
        harness.run(["e1", "e2"])


class TestReports:
    def test_throughput_report_fields(self, flat_machine):
        table = compile_table(flat_machine)
        harness = FleetHarness(table, n_instances=50, n_shards=2,
                               batch_size=4, routing="broadcast")
        harness.start()
        report = harness.run(["e1", "e3"])
        assert report.elapsed_s > 0
        assert report.events_per_sec > 0
        assert len(report.shards) == harness.n_shards
        for index, shard in enumerate(report.shards):
            assert shard.shard == index
            assert shard.p50_ms <= shard.p90_ms <= shard.p99_ms \
                <= shard.max_ms
        assert "lane-events" in report.summary()
