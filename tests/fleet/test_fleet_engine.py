"""The fleet engine: trace parity, wide-lane agreement, stats, budgets."""

import pytest

from repro.fleet import (Fleet, FleetExecutionError, compile_table)
from repro.semantics.runtime import MachineInstance
from repro.semantics.trace import observable_equal
from repro.uml import Assign, StateMachineBuilder, calls, parse_expr


def interpreter_run(machine, events, externals=None):
    instance = MachineInstance(machine, externals=externals)
    instance.start()
    for event in events:
        instance.dispatch(event)
    return instance


class TestTraceParity:
    SCENARIOS = ([], ["e1"], ["e1", "e3"], ["e1", "e3", "e1", "e4"],
                 ["e4", "e4"], ["bogus", "e1"])

    def test_flat_machine_traced_lane(self, flat_machine):
        for events in self.SCENARIOS:
            ref = interpreter_run(flat_machine, events)
            fleet = Fleet(flat_machine, 1, trace=True).start()
            for event in events:
                fleet.dispatch_all(event)
            assert observable_equal(ref.trace, fleet.trace_of(0)), events
            assert ref.in_final == fleet.lane_in_final(0), events

    def test_hierarchical_machine_traced_lane(self, hierarchical_machine):
        for events in ([], ["e2"], ["e1", "e2"], ["e31", "e9", "e2"]):
            ref = interpreter_run(hierarchical_machine, events)
            fleet = Fleet(hierarchical_machine, 1, trace=True).start()
            for event in events:
                fleet.dispatch_all(event)
            assert observable_equal(ref.trace, fleet.trace_of(0)), events
            assert ref.in_final == fleet.lane_in_final(0), events

    def test_wide_fleet_matches_interpreter_everywhere(self, flat_machine):
        events = ["e1", "e3", "e1", "e4"]
        ref = interpreter_run(flat_machine, events)
        fleet = Fleet(flat_machine, 37).start()
        for event in events:
            fleet.dispatch_all(event)
        for lane in range(fleet.n):
            assert fleet.lane_in_final(lane) == ref.in_final
            assert fleet.attributes_of(lane) == dict(ref.attributes)
        assert fleet.finals() == (37 if ref.in_final else 0)


class TestVectorizedPath:
    def test_static_jumps_take_the_fast_path(self, flat_machine):
        fleet = Fleet(flat_machine, 64).start()
        fleet.dispatch_all("e1")
        fleet.dispatch_all("e3")
        assert fleet.stats.fast_lane_events == 128
        assert fleet.stats.scalar_lane_events == 0
        assert fleet.stats.fast_fraction == 1.0

    def test_traced_fleet_runs_scalar(self, flat_machine):
        fleet = Fleet(flat_machine, 2, trace=True).start()
        fleet.dispatch_all("e1")
        assert fleet.stats.scalar_lane_events == 2
        assert fleet.stats.fast_lane_events == 0

    def test_guarded_cells_run_scalar_but_agree(self):
        b = StateMachineBuilder("Guarded")
        b.attribute("n", 0)
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go", guard="n == 0")
        b.transition("A", "A", on="bump",
                     effect=[Assign("n", parse_expr("n + 1"))])
        machine = b.build()
        ref = interpreter_run(machine, ["bump", "go"])
        fleet = Fleet(machine, 8).start()
        fleet.dispatch_all("bump")
        fleet.dispatch_all("go")
        assert fleet.stats.scalar_lane_events > 0
        for lane in range(8):
            assert fleet.attributes_of(lane) == dict(ref.attributes)
            assert fleet.config_name(lane) == "A"   # guard was false


class TestObservers:
    def test_current_and_active_states(self, hierarchical_machine):
        fleet = Fleet(hierarchical_machine, 3).start()
        # start: S1's unguarded completion fires immediately -> S2
        assert fleet.current_state(0) == "S2"
        assert "S2" in fleet.active_states(0)
        fleet.dispatch_all("e2")
        assert fleet.lane_in_final(2)
        assert fleet.current_state(2) is None

    def test_run_stream_equals_dispatch_loop(self, flat_machine):
        a = Fleet(flat_machine, 4).start().run_stream(["e1", "e3"])
        b = Fleet(flat_machine, 4).start()
        b.dispatch_all("e1")
        b.dispatch_all("e3")
        for lane in range(4):
            assert a.config_name(lane) == b.config_name(lane)


class TestExternalsAndEmits:
    def test_mapped_externals_receive_calls(self):
        b = StateMachineBuilder("Ext")
        b.state("A")
        b.state("B", entry=calls("beep"))
        b.initial_to("A")
        b.transition("A", "B", on="go")
        machine = b.build()
        seen = []
        fleet = Fleet(machine, 2,
                      externals={"beep": lambda: seen.append(1)}).start()
        fleet.dispatch_all("go")
        assert len(seen) == 2   # one call per lane

    def test_emitted_event_feeds_back(self):
        b = StateMachineBuilder("Emit")
        b.state("A")
        b.state("B")
        b.state("C")
        b.initial_to("A")
        b.transition("A", "B", on="go", effect=[__import__(
            "repro.uml.actions", fromlist=["EmitStmt"]).EmitStmt("next")])
        b.transition("B", "C", on="next")
        machine = b.build()
        ref = interpreter_run(machine, ["go"])
        fleet = Fleet(machine, 5).start()
        fleet.dispatch_all("go")
        for lane in range(5):
            assert fleet.config_name(lane) == "C"
        assert ref.current_state == "C"


class TestBudget:
    def _livelock_machine(self):
        b = StateMachineBuilder("Livelock")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.completion("A", "B")
        b.completion("B", "A")
        return b.build()

    def test_budget_exhaustion_raises(self):
        machine = self._livelock_machine()
        with pytest.raises(FleetExecutionError):
            Fleet(machine, 1, step_budget=100).start()

    def test_unbounded_budget_is_opt_in(self, flat_machine):
        fleet = Fleet(flat_machine, 1, step_budget=None).start()
        fleet.dispatch_all("e1")
        assert fleet.config_name(0) == "S3"


class TestSharedTable:
    def test_fleet_accepts_precompiled_table(self, flat_machine):
        table = compile_table(flat_machine)
        a = Fleet(table, 2).start()
        b = Fleet(table, 2).start()
        a.dispatch_all("e1")
        b.dispatch_all("e1")
        assert a.config_name(0) == b.config_name(0) == "S3"
