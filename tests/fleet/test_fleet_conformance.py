"""Fleet conformance: the packaged check and its cached engine surface."""

from repro.fleet import check_fleet_conformance
from repro.semantics.variation import (ConflictPolicy,
                                       UML_DEFAULT_SEMANTICS)


class TestCheckFleetConformance:
    def test_flat_machine_conformant(self, flat_machine):
        report = check_fleet_conformance(flat_machine, wide_lanes=16)
        assert report.conformant, report.summary()
        assert report.scenarios_run > 0
        assert report.wide_lanes == 16
        assert "conformant" in report.summary()

    def test_hierarchical_machine_conformant(self, hierarchical_machine):
        report = check_fleet_conformance(hierarchical_machine,
                                         wide_lanes=8)
        assert report.conformant, report.summary()
        # the Fig.1 machines are fully static: the wide runs vectorize
        assert report.fast_fraction == 1.0

    def test_unsupported_semantics_reported_not_raised(self, flat_machine):
        variant = UML_DEFAULT_SEMANTICS.with_(
            conflict_resolution=ConflictPolicy.OUTERMOST_FIRST)
        report = check_fleet_conformance(flat_machine, semantics=variant)
        assert not report.conformant
        assert report.unsupported is not None
        assert "fleet-unsupported" in report.summary()

    def test_explicit_scenarios_respected(self, flat_machine):
        report = check_fleet_conformance(flat_machine,
                                         scenarios=[("e1",), ("e1", "e4")])
        assert report.scenarios_run == 2
        assert report.conformant


class TestEngineSurface:
    def test_fleet_conformance_is_cached(self, memory_engine,
                                         flat_machine):
        first = memory_engine.fleet_conformance(flat_machine)
        assert first.conformant
        before = memory_engine.cache.stats.hits
        second = memory_engine.fleet_conformance(flat_machine)
        assert memory_engine.cache.stats.hits > before
        assert second.conformant
        assert second.scenarios_run == first.scenarios_run

    def test_wide_lanes_keys_the_cache(self, memory_engine, flat_machine):
        a = memory_engine.fleet_conformance(flat_machine, wide_lanes=4)
        b = memory_engine.fleet_conformance(flat_machine, wide_lanes=8)
        assert a.wide_lanes == 4 and b.wide_lanes == 8
