"""The table compiler: config space, cell classification, rejections."""

import pytest

from repro.fleet import FINAL_CONFIG, FleetUnsupported, compile_table
from repro.semantics.variation import (ConflictPolicy,
                                       UML_DEFAULT_SEMANTICS)
from repro.uml import Assign, StateMachineBuilder, calls, parse_expr


class TestConfigSpace:
    def test_flat_machine_configs_and_columns(self, flat_machine):
        table = compile_table(flat_machine)
        # FINAL + (S1, S3 reachable; S2 unreachable but enterable
        # through its row only if some transition targets it — the
        # worklist only materializes configs reachable from start or
        # a fire destination).
        assert table.config_names[FINAL_CONFIG] == "<final>"
        assert "e1" in table.event_names
        # one extra column routes out-of-alphabet events
        assert table.n_columns == len(table.event_names) + 1
        assert table.column_of("no_such_event") == table.other_column

    def test_final_row_is_empty(self, flat_machine):
        table = compile_table(flat_machine)
        assert all(cell.empty for cell in table.cells[FINAL_CONFIG])
        assert table.completion[FINAL_CONFIG] is None

    def test_describe_mentions_static_fraction(self, hierarchical_machine):
        table = compile_table(hierarchical_machine)
        assert "static" in table.describe()

    def test_event_names_deduped_in_declaration_order(self):
        b = StateMachineBuilder("Dedup")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="x")
        b.transition("B", "A", on="x")
        b.transition("A", "final", on="y")
        table = compile_table(b.build())
        assert table.event_names.count("x") == 1


class TestClassification:
    def test_bare_jump_is_static(self):
        b = StateMachineBuilder("Bare")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go")
        table = compile_table(b.build())
        config_a = table.config_names.index("A")
        cell = table.cells[config_a][table.column_of("go")]
        assert cell.static_end is not None
        assert cell.static_consumed is False   # fresh external entry

    def test_assign_effect_is_dynamic(self):
        b = StateMachineBuilder("Dyn")
        b.attribute("n", 0)
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go",
                     effect=[Assign("n", parse_expr("n + 1"))])
        table = compile_table(b.build())
        config_a = table.config_names.index("A")
        cell = table.cells[config_a][table.column_of("go")]
        assert cell.static_end is None

    def test_guarded_transition_is_dynamic(self):
        b = StateMachineBuilder("Guarded")
        b.attribute("n", 0)
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go", guard="n == 0")
        table = compile_table(b.build())
        config_a = table.config_names.index("A")
        cell = table.cells[config_a][table.column_of("go")]
        assert cell.static_end is None

    def test_entry_calls_stay_static(self):
        # Calls are observable only when mapped/traced; the classifier
        # marks the route call-bearing but still static.
        b = StateMachineBuilder("Calls")
        b.state("A")
        b.state("B", entry=calls("beep"))
        b.initial_to("A")
        b.transition("A", "B", on="go")
        table = compile_table(b.build())
        config_a = table.config_names.index("A")
        cell = table.cells[config_a][table.column_of("go")]
        assert cell.static_end is not None
        assert cell.static_has_call


class TestRejections:
    def test_non_default_semantics_rejected(self, flat_machine):
        variant = UML_DEFAULT_SEMANTICS.with_(
            conflict_resolution=ConflictPolicy.OUTERMOST_FIRST)
        with pytest.raises(FleetUnsupported):
            compile_table(flat_machine, variant)

    def test_default_semantics_accepted(self, flat_machine):
        assert compile_table(flat_machine, UML_DEFAULT_SEMANTICS)

    def test_choice_pseudostate_rejected(self):
        b = StateMachineBuilder("Choice")
        b.attribute("n", 0)
        b.state("A")
        b.state("B")
        b.state("C")
        b.initial_to("A")
        pick = b.choice("pick")
        b.transition("A", pick, on="go")
        b.transition(pick, "B", guard="n == 0")
        b.transition(pick, "C")
        machine = b.build()
        with pytest.raises(FleetUnsupported):
            compile_table(machine)
