"""Tests for automatic optimization selection (the paper's §VI plan)."""

import pytest

from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.optim import (auto_optimize, check_equivalence, optimize,
                         suggest_optimizations)
from repro.semantics import SemanticsConfig
from repro.uml import StateMachineBuilder, calls


def names(suggestions):
    return [s.pass_name for s in suggestions]


class TestSuggestions:
    def test_clean_machine_gets_no_suggestions(self):
        b = StateMachineBuilder("Clean")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        assert suggest_optimizations(b.build()) == []

    def test_flat_model_suggests_unreachable_removal(self):
        suggestions = suggest_optimizations(
            flat_machine_with_unreachable_state())
        assert "remove-unreachable-states" in names(suggestions)
        reason = next(s.reason for s in suggestions
                      if s.pass_name == "remove-unreachable-states")
        assert "S2" in reason

    def test_hierarchical_model_suggests_shadow_removal(self):
        suggestions = suggest_optimizations(
            hierarchical_machine_with_shadowed_composite())
        assert names(suggestions)[:2] == ["remove-shadowed-transitions",
                                          "remove-unreachable-states"]

    def test_non_uml_semantics_drops_shadow_suggestion(self):
        suggestions = suggest_optimizations(
            hierarchical_machine_with_shadowed_composite(),
            semantics=SemanticsConfig(completion_priority=False))
        assert "remove-shadowed-transitions" not in names(suggestions)

    def test_foldable_guard_suggested(self):
        b = StateMachineBuilder("G")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x", guard="1 < 2")
        suggestions = suggest_optimizations(b.build())
        assert "simplify-guards" in names(suggestions)

    def test_trivial_composite_suggested(self):
        b = StateMachineBuilder("T")
        sub = b.composite("C")
        sub.state("Inner")
        sub.initial_to("Inner")
        b.initial_to("C")
        b.transition("Inner", "final", on="x")
        # cross-region transition is fine for the advisor/model level
        suggestions = suggest_optimizations(b.build())
        assert "flatten-trivial-composites" in names(suggestions)

    def test_orphan_event_suggested(self):
        b = StateMachineBuilder("O")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        b.event("never_used")
        suggestions = suggest_optimizations(b.build())
        assert "remove-unused-events" in names(suggestions)

    def test_suggestions_render(self):
        suggestions = suggest_optimizations(
            flat_machine_with_unreachable_state())
        assert all(":" in str(s) for s in suggestions)


class TestAutoOptimize:
    @pytest.mark.parametrize("factory", [
        flat_machine_with_unreachable_state,
        hierarchical_machine_with_shadowed_composite])
    def test_matches_full_pipeline_result(self, factory):
        machine = factory()
        auto = auto_optimize(machine)
        full = optimize(machine)
        assert {s.name for s in auto.optimized.all_states()} == \
            {s.name for s in full.optimized.all_states()}

    def test_auto_is_behavior_preserving(self):
        machine = hierarchical_machine_with_shadowed_composite()
        report = auto_optimize(machine)
        eq = check_equivalence(machine, report.optimized, n_random=5)
        assert eq.equivalent

    def test_noop_on_clean_machine(self):
        b = StateMachineBuilder("Clean")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        machine = b.build()
        report = auto_optimize(machine)
        assert not report.changed
