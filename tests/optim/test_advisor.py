"""Tests for automatic optimization selection (the paper's §VI plan)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.fuzz import DEFAULT_PROFILES, generate_case
from repro.optim import (auto_optimize, check_equivalence, optimize,
                         suggest_optimizations)
from repro.optim.manager import DEFAULT_PIPELINE
from repro.semantics import SemanticsConfig
from repro.uml import StateMachineBuilder, calls
from repro.uml.events import TimeEvent

_SETTINGS = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def names(suggestions):
    return [s.pass_name for s in suggestions]


class TestSuggestions:
    def test_clean_machine_gets_no_suggestions(self):
        b = StateMachineBuilder("Clean")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        assert suggest_optimizations(b.build()) == []

    def test_flat_model_suggests_unreachable_removal(self):
        suggestions = suggest_optimizations(
            flat_machine_with_unreachable_state())
        assert "remove-unreachable-states" in names(suggestions)
        reason = next(s.reason for s in suggestions
                      if s.pass_name == "remove-unreachable-states")
        assert "S2" in reason

    def test_hierarchical_model_suggests_shadow_removal(self):
        suggestions = suggest_optimizations(
            hierarchical_machine_with_shadowed_composite())
        assert names(suggestions)[:2] == ["remove-shadowed-transitions",
                                          "remove-unreachable-states"]

    def test_non_uml_semantics_drops_shadow_suggestion(self):
        suggestions = suggest_optimizations(
            hierarchical_machine_with_shadowed_composite(),
            semantics=SemanticsConfig(completion_priority=False))
        assert "remove-shadowed-transitions" not in names(suggestions)

    def test_foldable_guard_suggested(self):
        b = StateMachineBuilder("G")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x", guard="1 < 2")
        suggestions = suggest_optimizations(b.build())
        assert "simplify-guards" in names(suggestions)

    def test_trivial_composite_suggested(self):
        b = StateMachineBuilder("T")
        sub = b.composite("C")
        sub.state("Inner")
        sub.initial_to("Inner")
        b.initial_to("C")
        b.transition("Inner", "final", on="x")
        # cross-region transition is fine for the advisor/model level
        suggestions = suggest_optimizations(b.build())
        assert "flatten-trivial-composites" in names(suggestions)

    def test_orphan_event_suggested(self):
        b = StateMachineBuilder("O")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        b.event("never_used")
        suggestions = suggest_optimizations(b.build())
        assert "remove-unused-events" in names(suggestions)

    def test_suggestions_render(self):
        suggestions = suggest_optimizations(
            flat_machine_with_unreachable_state())
        assert all(":" in str(s) for s in suggestions)


class TestAutoOptimize:
    @pytest.mark.parametrize("factory", [
        flat_machine_with_unreachable_state,
        hierarchical_machine_with_shadowed_composite])
    def test_matches_full_pipeline_result(self, factory):
        machine = factory()
        auto = auto_optimize(machine)
        full = optimize(machine)
        assert {s.name for s in auto.optimized.all_states()} == \
            {s.name for s in full.optimized.all_states()}

    def test_auto_is_behavior_preserving(self):
        machine = hierarchical_machine_with_shadowed_composite()
        report = auto_optimize(machine)
        eq = check_equivalence(machine, report.optimized, n_random=5)
        assert eq.equivalent

    def test_noop_on_clean_machine(self):
        b = StateMachineBuilder("Clean")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        machine = b.build()
        report = auto_optimize(machine)
        assert not report.changed


def assert_pipeline_subsequence(suggestions):
    """The ordering contract the autotuner's lattice relies on."""
    suggested = names(suggestions)
    assert len(suggested) == len(set(suggested)), "duplicate pass suggested"
    order = [DEFAULT_PIPELINE.index(n) for n in suggested]
    assert order == sorted(order), \
        f"{suggested} is not a subsequence of {list(DEFAULT_PIPELINE)}"


class TestOrderingContract:
    """suggest_optimizations is the tuner's static prior: its output is
    a duplicate-free subsequence of DEFAULT_PIPELINE, so every subset of
    it is a valid ``optimize(selection=...)`` as-is."""

    @pytest.mark.parametrize("factory", [
        flat_machine_with_unreachable_state,
        hierarchical_machine_with_shadowed_composite])
    def test_curated_machines_follow_pipeline_order(self, factory):
        assert_pipeline_subsequence(suggest_optimizations(factory()))

    def test_all_pass_names_are_known(self):
        for factory in (flat_machine_with_unreachable_state,
                        hierarchical_machine_with_shadowed_composite):
            for s in suggest_optimizations(factory()):
                assert s.pass_name in DEFAULT_PIPELINE

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           profile=st.sampled_from(DEFAULT_PROFILES))
    def test_generated_machines_follow_pipeline_order(self, seed, profile):
        machine = generate_case(seed, profile).machine
        assert_pipeline_subsequence(suggest_optimizations(machine))

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           profile=st.sampled_from(DEFAULT_PROFILES))
    def test_every_suggestion_set_is_a_runnable_selection(self, seed,
                                                          profile):
        machine = generate_case(seed, profile).machine
        selection = names(suggest_optimizations(machine))
        assert optimize(machine, selection=selection).optimized is not None


def orphan_names(suggestions):
    """Event names a remove-unused-events suggestion claims are unused."""
    marker = "declared-but-unused event(s): "
    for s in suggestions:
        if s.pass_name == "remove-unused-events" and \
                s.reason.startswith(marker):
            listed = s.reason[len(marker):]
            return [n.strip() for n in listed.split(",")]
    return []


class TestOrphanDetection:
    """Orphan detection compares ``trig.key()`` against the keys of
    ``machine.events`` — the key embeds the event *type*, so timing and
    signal events with coincident names must never cross-match."""

    def test_attached_time_event_is_not_an_orphan(self):
        b = StateMachineBuilder("Timer")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        timeout = b.time_event(5)
        b.transition("A", "B", on=timeout)
        b.transition("B", "final", on="done")
        suggestions = suggest_optimizations(b.build())
        assert orphan_names(suggestions) == []

    def test_unattached_time_event_is_an_orphan(self):
        b = StateMachineBuilder("Timer")
        b.state("A")
        b.initial_to("A")
        b.time_event(7)          # declared, never triggers anything
        b.transition("A", "final", on="go")
        suggestions = suggest_optimizations(b.build())
        assert orphan_names(suggestions) == ["after_7ms"]

    def test_completion_transitions_do_not_create_orphans(self):
        # Completion transitions carry no trigger at all; their implicit
        # CompletionEvent never appears in machine.events, so a machine
        # mixing completion flows with fully-used signals is orphan-free.
        b = StateMachineBuilder("Compl")
        sub = b.composite("C")
        sub.state("Inner")
        sub.state("Inner2")
        sub.initial_to("Inner")
        sub.transition("Inner", "Inner2", on="step")
        b.initial_to("C")
        b.transition("C", "final")          # completion transition
        machine = b.build()
        suggestions = suggest_optimizations(machine)
        assert orphan_names(suggestions) == []

    def test_signal_event_named_like_a_time_event_stays_distinct(self):
        # A SignalEvent named "after_5ms" and a TimeEvent(5) have equal
        # names but different keys; using one must not excuse the other.
        b = StateMachineBuilder("Clash")
        b.state("A")
        b.initial_to("A")
        b.time_event(5)                        # TimeEvent:after_5ms, unused
        b.transition("A", "final", on="after_5ms")   # SignalEvent:after_5ms
        suggestions = suggest_optimizations(b.build())
        assert orphan_names(suggestions) == ["after_5ms"]
        declared = sorted(b.machine.events)
        assert declared == ["SignalEvent:after_5ms", "TimeEvent:after_5ms"]

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           profile=st.sampled_from(DEFAULT_PROFILES))
    def test_no_false_orphans_on_generated_machines(self, seed, profile):
        machine = generate_case(seed, profile).machine
        used = {trig.key() for tr in machine.all_transitions()
                for trig in tr.triggers}
        truly_unused = {e.name for k, e in machine.events.items()
                        if k not in used}
        for name in orphan_names(suggest_optimizations(machine)):
            assert name in truly_unused, \
                f"{name} reported as orphan but a trigger uses it"

    @_SETTINGS
    @given(duration=st.integers(min_value=1, max_value=10_000))
    def test_time_event_triggers_never_false_orphan(self, duration):
        b = StateMachineBuilder("T")
        b.state("A")
        b.initial_to("A")
        ev = TimeEvent(duration_ms=duration)
        b.transition("A", "final", on=ev)
        suggestions = suggest_optimizations(b.build())
        assert orphan_names(suggestions) == []
