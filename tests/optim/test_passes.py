"""Tests for individual optimization passes and the pass manager."""

import pytest

from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.optim import (DEFAULT_PIPELINE, FlattenTrivialComposites,
                         MergeFinalStates, PassManager,
                         RemoveDeadComposites, RemoveShadowedTransitions,
                         RemoveUnreachableStates, RemoveUnusedEvents,
                         SimplifyGuards, check_equivalence, optimize)
from repro.semantics import SemanticsConfig
from repro.uml import StateMachineBuilder, calls


class TestRemoveUnreachableStates:
    def test_removes_s2_from_flat_model(self):
        m = flat_machine_with_unreachable_state()
        result = RemoveUnreachableStates().run(m)
        assert result.changed
        assert any("S2" in s for s in result.removed_states)
        assert "S2" not in {s.name for s in m.all_states()}

    def test_noop_on_clean_machine(self):
        b = StateMachineBuilder("C")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        result = RemoveUnreachableStates().run(b.build())
        assert not result.changed

    def test_removes_chain_iteratively(self):
        b = StateMachineBuilder("Chain")
        b.state("A")
        b.state("D1")
        b.state("D2")
        b.initial_to("A")
        b.transition("A", "final", on="ok")
        b.transition("D1", "D2", on="x")
        m = b.build()
        result = RemoveUnreachableStates().run(m)
        assert len(result.removed_states) == 2


class TestRemoveShadowedTransitions:
    def test_removes_e2_arc(self):
        m = hierarchical_machine_with_shadowed_composite()
        result = RemoveShadowedTransitions().run(m)
        assert result.removed_transitions == ["S2 -e2-> S3"]

    def test_requires_completion_priority(self):
        pass_ = RemoveShadowedTransitions()
        assert not pass_.applicable(
            SemanticsConfig(completion_priority=False))

    def test_skipped_under_non_uml_semantics(self):
        m = hierarchical_machine_with_shadowed_composite()
        mgr = PassManager(
            semantics=SemanticsConfig(completion_priority=False))
        report = mgr.run(m)
        assert "remove-shadowed-transitions" in report.skipped_passes
        # The composite stays: without completion priority e2 can fire.
        assert "S3" in {s.name for s in report.optimized.all_states()}


class TestRemoveDeadComposites:
    def test_removes_composite_and_children_only(self):
        m = hierarchical_machine_with_shadowed_composite()
        result = RemoveDeadComposites().run(m)
        names = {s.name for s in m.all_states()}
        assert "S3" not in names and "S31" not in names
        # The pass leaves the shadowed arc's bookkeeping to other passes,
        # but the arc dies with the composite (its target is gone).
        assert len([s for s in result.removed_states]) == 4


class TestSimplifyGuards:
    def test_true_guard_dropped(self):
        b = StateMachineBuilder("T")
        b.state("A")
        b.initial_to("A")
        tr = b.transition("A", "final", on="x", guard="1 < 2")
        m = b.build()
        result = SimplifyGuards().run(m)
        assert result.simplified_guards == 1
        assert tr.guard is None

    def test_false_guard_transition_removed(self):
        b = StateMachineBuilder("F")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="x", guard="2 < 1")
        b.transition("A", "final", on="y")
        m = b.build()
        result = SimplifyGuards().run(m)
        assert result.removed_transitions
        assert all(t.guard is None for t in m.all_transitions())

    def test_partial_fold(self):
        b = StateMachineBuilder("P")
        b.attribute("n", 0)
        b.state("A")
        b.initial_to("A")
        tr = b.transition("A", "final", on="x", guard="n > 1 + 2")
        m = b.build()
        SimplifyGuards().run(m)
        from repro.uml import parse_expr
        assert tr.guard == parse_expr("n > 3")


class TestMergeFinalStates:
    def test_merges_duplicates(self):
        from repro.uml import FinalState, Transition
        b = StateMachineBuilder("MF")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "final", on="x")
        extra_final = b.region.add_vertex(FinalState("final2"))
        b.transition("B", extra_final, on="y")
        b.transition("A", "B", on="go")
        m = b.build()
        result = MergeFinalStates().run(m)
        assert result.changed
        assert len(m.top.final_states()) == 1


class TestFlattenTrivialComposites:
    def make_trivial(self):
        b = StateMachineBuilder("FT")
        sub = b.composite("C", entry=calls("c_in"), exit=calls("c_out"))
        inner = sub.state("Inner", entry=calls("i_in"), exit=calls("i_out"))
        sub.initial_to("Inner")
        b.initial_to("C")
        b.transition("Inner", "final", on="leave")
        return b.build()

    def test_flattens(self):
        m = self.make_trivial()
        result = FlattenTrivialComposites().run(m)
        assert result.changed
        c = m.find_state("C")
        assert c.is_simple
        assert "Inner" not in {s.name for s in m.all_states()}

    def test_flattening_preserves_behavior(self):
        original = self.make_trivial()
        optimized = self.make_trivial()
        FlattenTrivialComposites().run(optimized)
        report = check_equivalence(original, optimized)
        assert report.equivalent, report.summary()

    def test_does_not_flatten_with_history(self):
        from repro.uml import PseudostateKind
        b = StateMachineBuilder("H")
        sub = b.composite("C")
        sub.state("Inner")
        sub.initial_to("Inner")
        sub.pseudostate(PseudostateKind.SHALLOW_HISTORY, "H")
        b.initial_to("C")
        b.transition("C", "final", on="x")
        m = b.build()
        assert not FlattenTrivialComposites().run(m).changed

    def test_does_not_flatten_composite_with_completion(self):
        b = StateMachineBuilder("CC")
        sub = b.composite("C")
        sub.state("Inner")
        sub.initial_to("Inner")
        b.initial_to("C")
        b.completion("C", "final")
        m = b.build()
        assert not FlattenTrivialComposites().run(m).changed


class TestRemoveUnusedEvents:
    def test_removes_untriggering_event(self):
        b = StateMachineBuilder("U")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="used")
        b.event("orphan")
        m = b.build()
        result = RemoveUnusedEvents().run(m)
        assert result.removed_events == ["orphan"]

    def test_keeps_emitted_events(self):
        from repro.uml import Behavior, EmitStmt
        b = StateMachineBuilder("E")
        b.state("A", entry=Behavior(statements=(EmitStmt("ping"),)))
        b.initial_to("A")
        b.transition("A", "final", on="ping")
        m = b.build()
        result = RemoveUnusedEvents().run(m)
        assert result.removed_events == []


class TestPassManagerAndPipeline:
    def test_default_pipeline_on_flat(self):
        m = flat_machine_with_unreachable_state()
        report = optimize(m)
        assert {s.name for s in report.optimized.all_states()} == {"S1", "S3"}
        # Original untouched.
        assert "S2" in {s.name for s in m.all_states()}

    def test_default_pipeline_on_hierarchical(self):
        m = hierarchical_machine_with_shadowed_composite()
        report = optimize(m)
        assert {s.name for s in report.optimized.all_states()} == {"S1", "S2"}

    def test_selection_restricts_passes(self):
        m = hierarchical_machine_with_shadowed_composite()
        report = optimize(m, selection=["simplify-guards"])
        # Without the structural passes the composite survives.
        assert "S3" in {s.name for s in report.optimized.all_states()}

    def test_unknown_selection_raises(self):
        with pytest.raises(KeyError):
            optimize(flat_machine_with_unreachable_state(),
                     selection=["no-such-pass"])

    def test_report_summary_mentions_passes(self):
        report = optimize(flat_machine_with_unreachable_state())
        assert "remove-unreachable-states" in report.summary()

    def test_catalog_descriptions(self):
        mgr = PassManager()
        text = mgr.describe_catalog()
        for name in DEFAULT_PIPELINE:
            assert name in text

    def test_pipeline_is_behavior_preserving_on_paper_models(self):
        for factory in (flat_machine_with_unreachable_state,
                        hierarchical_machine_with_shadowed_composite):
            m = factory()
            report = optimize(m)
            eq = check_equivalence(m, report.optimized)
            assert eq.equivalent, f"{m.name}: {eq.summary()}"

    def test_fixpoint_cascade(self):
        # Shadowed arc removal must strand the composite, which the
        # unreachable pass then removes in the same run.
        m = hierarchical_machine_with_shadowed_composite()
        report = optimize(m)
        assert report.iterations >= 2
        assert any("S3" in s for s in report.removed_states)
