"""Interpreter tests: run-to-completion, hierarchy, completion priority."""

import pytest

from repro.uml import (Assign, IntLit, StateMachineBuilder, calls, parse_expr)
from repro.semantics import (ConflictPolicy, EventPoolPolicy, ExecutionError,
                             MachineInstance, SemanticsConfig,
                             UnconsumedPolicy, run_scenario)


def toggle_machine():
    b = StateMachineBuilder("Toggle")
    b.state("Off", entry=calls("off_entered"))
    b.state("On", entry=calls("on_entered"))
    b.initial_to("Off")
    b.transition("Off", "On", on="flip")
    b.transition("On", "Off", on="flip")
    b.transition("Off", "final", on="kill")
    return b.build()


class TestBasics:
    def test_start_enters_initial_target(self):
        inst = MachineInstance(toggle_machine()).start()
        assert inst.current_state == "Off"

    def test_dispatch_moves_between_states(self):
        inst = run_scenario(toggle_machine(), ["flip", "flip", "flip"])
        assert inst.current_state == "On"

    def test_unknown_event_discarded_by_default(self):
        inst = run_scenario(toggle_machine(), ["nonsense"])
        assert inst.current_state == "Off"
        assert any(r.kind.value == "dropped" for r in inst.trace)

    def test_final_state_completes_machine(self):
        inst = run_scenario(toggle_machine(), ["kill"])
        assert inst.in_final
        assert inst.current_state is None

    def test_dispatch_before_start_raises(self):
        inst = MachineInstance(toggle_machine())
        with pytest.raises(ExecutionError):
            inst.dispatch("flip")

    def test_double_start_raises(self):
        inst = MachineInstance(toggle_machine()).start()
        with pytest.raises(ExecutionError):
            inst.start()

    def test_entry_behaviors_traced_as_calls(self):
        inst = run_scenario(toggle_machine(), ["flip"])
        assert ("off_entered", ()) in inst.trace.calls()
        assert ("on_entered", ()) in inst.trace.calls()


class TestGuardsAndEffects:
    def make_counter(self):
        b = StateMachineBuilder("Counter")
        b.attribute("n", 0)
        b.state("Count")
        b.initial_to("Count")
        b.transition("Count", "Count", on="inc",
                     effect=[Assign("n", parse_expr("n + 1"))])
        b.transition("Count", "final", on="check", guard="n >= 3")
        return b.build()

    def test_guard_blocks_until_true(self):
        m = self.make_counter()
        inst = run_scenario(m, ["check", "inc", "check", "inc", "inc", "check"])
        assert inst.in_final
        assert inst.attributes["n"] == 3

    def test_externals_invoked(self):
        seen = []
        b = StateMachineBuilder("Caller")
        b.state("A", entry=calls("hello"))
        b.initial_to("A")
        b.transition("A", "final", on="x")
        m = b.build()
        run_scenario(m, [], externals={"hello": lambda: seen.append(1)})
        assert seen == [1]


class TestCompletionSemantics:
    """The UML rule at the heart of the paper: an unguarded completion
    transition fires before any pooled event can be consumed."""

    def machine_with_shadowed_exit(self):
        b = StateMachineBuilder("Shadow")
        b.state("S1")
        b.state("S2")
        b.state("S3")
        b.initial_to("S1")
        b.transition("S1", "S2", on="e1")
        b.transition("S2", "S3", on="e2")   # shadowed by completion below
        b.completion("S2", "final")
        return b.build()

    def test_completion_fires_immediately_on_entry(self):
        inst = run_scenario(self.machine_with_shadowed_exit(), ["e1"])
        assert inst.in_final  # S2 completed straight to final

    def test_event_transition_from_shadowed_state_never_fires(self):
        inst = run_scenario(self.machine_with_shadowed_exit(), ["e1", "e2"])
        assert "S3" not in inst.trace.entered_states()

    def test_guarded_completion_does_not_shadow(self):
        b = StateMachineBuilder("Guarded")
        b.attribute("ok", 0)
        b.state("S1")
        b.state("S2")
        b.state("S3")
        b.initial_to("S1")
        b.transition("S1", "S2", on="e1")
        b.transition("S2", "S3", on="e2")
        b.completion("S2", "final", guard="ok == 1")
        m = b.build()
        inst = run_scenario(m, ["e1", "e2"])
        assert inst.current_state == "S3"


class TestHierarchy:
    def composite_machine(self):
        b = StateMachineBuilder("H")
        b.state("S1", entry=calls("s1_in"))
        sub = b.composite("S3", entry=calls("s3_in"))
        sub.state("S31", entry=calls("s31_in"))
        sub.state("S32")
        sub.initial_to("S31")
        sub.transition("S31", "S32", on="step")
        sub.transition("S32", "final", on="finish_inner")
        b.initial_to("S1")
        b.transition("S1", "S3", on="enter_c")
        b.transition("S3", "final", on="leave_c")
        b.completion("S3", "S1")
        return b.build()

    def test_default_entry_reaches_nested_initial(self):
        inst = run_scenario(self.composite_machine(), ["enter_c"])
        assert inst.active_states == ["S3", "S31"]

    def test_entry_order_outer_then_inner(self):
        inst = run_scenario(self.composite_machine(), ["enter_c"])
        names = [c[0] for c in inst.trace.calls()]
        assert names.index("s3_in") < names.index("s31_in")

    def test_event_bubbles_to_composite(self):
        # 'leave_c' is handled by the composite while an inner state is active
        inst = run_scenario(self.composite_machine(), ["enter_c", "leave_c"])
        assert inst.in_final

    def test_inner_transition_preferred_innermost_first(self):
        inst = run_scenario(self.composite_machine(), ["enter_c", "step"])
        assert inst.active_states == ["S3", "S32"]

    def test_region_completion_triggers_composite_completion(self):
        inst = run_scenario(self.composite_machine(),
                            ["enter_c", "step", "finish_inner"])
        # completion transition S3 -> S1 fires
        assert inst.current_state == "S1"

    def test_outermost_first_policy_changes_winner(self):
        b = StateMachineBuilder("Conflict")
        sub = b.composite("C")
        sub.state("C1")
        sub.initial_to("C1")
        sub.transition("C1", "final", on="e")
        b.initial_to("C")
        b.state("Out")
        b.transition("C", "Out", on="e")
        m = b.build()
        inner_first = run_scenario(m, ["e"])
        assert inner_first.active_states == ["C"]  # inner consumed the event
        outer_first = run_scenario(
            m, ["e"], config=SemanticsConfig(
                conflict_resolution=ConflictPolicy.OUTERMOST_FIRST))
        assert outer_first.current_state == "Out"


class TestVariationPoints:
    def queue_machine(self):
        b = StateMachineBuilder("Q")
        b.state("A")
        b.state("B")
        b.state("C")
        b.initial_to("A")
        b.transition("A", "B", on="x")
        b.transition("B", "C", on="y")
        b.transition("B", "final", on="z")
        return b.build()

    def test_defer_policy_recalls_event(self):
        # 'y' arrives while in A (not consumable), then 'x' moves to B and
        # the deferred 'y' is recalled -> C.
        m = self.queue_machine()
        inst = MachineInstance(m, config=SemanticsConfig(
            unconsumed_events=UnconsumedPolicy.DEFER)).start()
        inst.dispatch("y")
        inst.dispatch("x")
        assert inst.current_state == "C"

    def test_lifo_pool_policy(self):
        m = self.queue_machine()
        inst = MachineInstance(m, config=SemanticsConfig(
            event_pool=EventPoolPolicy.LIFO)).start()
        # Queue both before processing by stuffing the pool directly.
        inst._pool.append(("x", 0))
        inst._pool.append(("z", 0))
        inst._run_to_completion()
        # LIFO: 'z' dispatched first (dropped in A), then 'x' -> B
        assert inst.current_state == "B"

    def test_priority_pool_policy(self):
        m = self.queue_machine()
        inst = MachineInstance(m, config=SemanticsConfig(
            event_pool=EventPoolPolicy.PRIORITY)).start()
        # FIFO would drop 'z' (not consumable in A) then take 'x' -> B.
        # PRIORITY takes 'x' (5) first -> B, then 'z' (1) fires B -> final.
        inst._pool.append(("z", 1))
        inst._pool.append(("x", 5))
        inst._run_to_completion()
        assert inst.in_final

    def test_completion_cycle_hits_step_budget(self):
        b = StateMachineBuilder("Loop")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.completion("A", "B")
        b.completion("B", "A")
        m = b.build()
        inst = MachineInstance(m, config=SemanticsConfig(
            max_run_to_completion_steps=50))
        with pytest.raises(ExecutionError):
            inst.start()


class TestPseudostates:
    def test_choice_selects_guarded_branch(self):
        b = StateMachineBuilder("Choice")
        b.attribute("v", 5)
        b.state("A")
        b.state("Low")
        b.state("High")
        ch = b.choice()
        b.initial_to("A")
        b.transition("A", ch, on="go")
        b.transition(ch, "Low", guard="v < 3")
        b.transition(ch, "High", guard="v >= 3")
        m = b.build()
        inst = run_scenario(m, ["go"])
        assert inst.current_state == "High"

    def test_choice_else_branch(self):
        b = StateMachineBuilder("ChoiceElse")
        b.attribute("v", 0)
        b.state("A")
        b.state("Low")
        b.state("Other")
        ch = b.choice()
        b.initial_to("A")
        b.transition("A", ch, on="go")
        b.transition(ch, "Low", guard="v > 100")
        b.transition(ch, "Other")  # acts as [else]
        m = b.build()
        inst = run_scenario(m, ["go"])
        assert inst.current_state == "Other"

    def test_stuck_choice_raises(self):
        b = StateMachineBuilder("Stuck")
        b.attribute("v", 0)
        b.state("A")
        b.state("B")
        ch = b.choice()
        b.initial_to("A")
        b.transition("A", ch, on="go")
        b.transition(ch, "B", guard="v > 100")
        m = b.build()
        with pytest.raises(ExecutionError):
            run_scenario(m, ["go"])

    def test_terminate_pseudostate(self):
        from repro.uml import PseudostateKind
        b = StateMachineBuilder("Term")
        b.state("A")
        term = b.pseudostate(PseudostateKind.TERMINATE, "T")
        b.initial_to("A")
        b.transition("A", term, on="die")
        m = b.build()
        inst = run_scenario(m, ["die"])
        assert inst.is_terminated

    def test_shallow_history_restores_substate(self):
        b = StateMachineBuilder("Hist")
        from repro.uml import PseudostateKind
        sub = b.composite("C")
        sub.state("C1")
        sub.state("C2")
        hist = sub.pseudostate(PseudostateKind.SHALLOW_HISTORY, "H")
        sub.initial_to("C1")
        sub.transition("C1", "C2", on="adv")
        b.state("Out")
        b.initial_to("C")
        b.transition("C", "Out", on="pause")
        b.transition("Out", hist, on="resume")
        m = b.build()
        inst = run_scenario(m, ["adv", "pause", "resume"])
        assert inst.active_states == ["C", "C2"]


class TestInternalTransitions:
    def test_internal_does_not_exit_or_enter(self):
        b = StateMachineBuilder("Int")
        b.state("A", entry=calls("enter_a"), exit=calls("exit_a"))
        b.initial_to("A")
        b.internal("A", on="tick", effect=calls("tock"))
        b.transition("A", "final", on="stop")
        m = b.build()
        inst = run_scenario(m, ["tick", "tick"])
        names = [c[0] for c in inst.trace.calls()]
        assert names == ["enter_a", "tock", "tock"]
