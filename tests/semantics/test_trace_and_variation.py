"""Tests for the trace model and the variation-point configuration."""

import pytest

from repro.semantics import (ConflictPolicy, EventPoolPolicy,
                             SemanticsConfig, Trace, TraceKind,
                             UnconsumedPolicy, UML_DEFAULT_SEMANTICS,
                             observable_equal)
from repro.experiments.report import format_gain, render_table


class TestTrace:
    def test_append_assigns_increasing_steps(self):
        trace = Trace()
        a = trace.append(TraceKind.CALL, "f", ())
        b = trace.append(TraceKind.STATE_ENTER, "S")
        assert (a.step, b.step) == (0, 1)

    def test_observable_filter(self):
        trace = Trace()
        trace.append(TraceKind.CALL, "f", (1,))
        trace.append(TraceKind.STATE_ENTER, "S")
        trace.append(TraceKind.ASSIGN, "x", 3)
        trace.append(TraceKind.EVENT_DISPATCH, "e")
        assert len(trace.observable()) == 2
        assert trace.calls() == [("f", (1,))]

    def test_observable_equality_ignores_internals(self):
        a = Trace()
        a.append(TraceKind.CALL, "f", ())
        a.append(TraceKind.STATE_ENTER, "S")     # internal
        b = Trace()
        b.append(TraceKind.EVENT_DISPATCH, "e")  # internal
        b.append(TraceKind.CALL, "f", ())
        assert observable_equal(a, b)

    def test_observable_inequality_on_different_calls(self):
        a = Trace()
        a.append(TraceKind.CALL, "f", ())
        b = Trace()
        b.append(TraceKind.CALL, "g", ())
        assert not observable_equal(a, b)

    def test_dump_renders_every_record(self):
        trace = Trace()
        trace.append(TraceKind.CALL, "f", ())
        trace.append(TraceKind.STATE_EXIT, "S")
        dump = trace.dump()
        assert "call" in dump and "exit" in dump

    def test_entered_states_and_transitions_views(self):
        trace = Trace()
        trace.append(TraceKind.STATE_ENTER, "A")
        trace.append(TraceKind.TRANSITION, "A -x-> B")
        trace.append(TraceKind.STATE_ENTER, "B")
        assert trace.entered_states() == ["A", "B"]
        assert trace.fired_transitions() == ["A -x-> B"]


class TestSemanticsConfig:
    def test_defaults_are_uml(self):
        cfg = UML_DEFAULT_SEMANTICS
        assert cfg.event_pool is EventPoolPolicy.FIFO
        assert cfg.unconsumed_events is UnconsumedPolicy.DISCARD
        assert cfg.conflict_resolution is ConflictPolicy.INNERMOST_FIRST
        assert cfg.completion_priority is True

    def test_with_derives_modified_copy(self):
        cfg = UML_DEFAULT_SEMANTICS.with_(completion_priority=False)
        assert cfg.completion_priority is False
        assert UML_DEFAULT_SEMANTICS.completion_priority is True

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            UML_DEFAULT_SEMANTICS.event_pool = EventPoolPolicy.LIFO

    def test_describe_mentions_every_point(self):
        text = UML_DEFAULT_SEMANTICS.describe()
        for token in ("pool=", "unconsumed=", "conflict=",
                      "completion_priority="):
            assert token in text


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table("T", ["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert all("|" in l for l in lines[3:])

    def test_format_gain_matches_paper_convention(self):
        assert format_gain(48764, 26379) == "45.90%"
        assert format_gain(0, 0) == "0.00%"
