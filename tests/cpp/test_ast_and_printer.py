"""Tests for the C++ AST helpers and the pretty printer."""

import pytest

from repro.cpp import ast as C
from repro.cpp import print_expr, print_stmt, print_unit
from repro.cpp.types import (ArrayType, BOOL, ClassRefType, EnumType,
                             FuncPtrType, INT, PointerType, VOID, size_of)


class TestTypes:
    def test_scalar_sizes(self):
        assert size_of(INT) == 4
        assert size_of(BOOL) == 4
        assert size_of(EnumType("E")) == 4

    def test_pointer_and_funcptr_sizes(self):
        assert size_of(PointerType(INT)) == 4
        assert size_of(FuncPtrType(VOID, (INT,))) == 4

    def test_array_size(self):
        assert size_of(ArrayType(INT, 10)) == 40

    def test_class_size_needs_registry(self):
        with pytest.raises(ValueError):
            size_of(ClassRefType("Row"))
        assert size_of(ClassRefType("Row"), {"Row": 24}) == 24

    def test_void_has_no_size(self):
        with pytest.raises(ValueError):
            size_of(VOID)

    def test_type_rendering(self):
        assert str(PointerType(ClassRefType("M"))) == "M*"
        assert str(ArrayType(INT, 3)) == "int[3]"


class TestExprPrinting:
    @pytest.mark.parametrize("expr,text", [
        (C.IntLit(42), "42"),
        (C.BoolLit(True), "true"),
        (C.NullPtr(), "0"),
        (C.Var("x"), "x"),
        (C.ThisExpr(), "this"),
        (C.EnumRef("Event", "EV_go"), "EV_go"),
        (C.FieldAccess(C.ThisExpr(), "state"), "this->state"),
        (C.Unary("!", C.Var("x")), "!x"),
        (C.Binary("+", C.Var("a"), C.IntLit(1)), "a + 1"),
        (C.Call("f", (C.IntLit(1), C.Var("x"))), "f(1, x)"),
        (C.Index(C.Var("t"), C.Var("i")), "t[i]"),
        (C.AddrOf(C.Var("g")), "&g"),
        (C.FuncRef("handler"), "&handler"),
        (C.Cast(INT, C.Var("p")), "(int)p"),
    ])
    def test_atoms(self, expr, text):
        assert print_expr(expr) == text

    def test_nested_binary_parenthesized(self):
        expr = C.Binary("*", C.Binary("+", C.Var("a"), C.Var("b")),
                        C.IntLit(2))
        assert print_expr(expr) == "(a + b) * 2"

    def test_method_call(self):
        expr = C.MethodCall(C.FieldAccess(C.ThisExpr(), "sub"), "Sub",
                            "step", (C.Var("ev"),))
        assert print_expr(expr) == "this->sub->step(ev)"

    def test_indirect_call(self):
        expr = C.IndirectCall(C.FieldAccess(C.Var("row"), "fn"),
                              (C.Var("m"),))
        assert print_expr(expr) == "(row->fn)(m)"


class TestStmtPrinting:
    def test_if_else(self):
        stmt = C.If(C.Var("c"), C.Block([C.Return(C.IntLit(1))]),
                    C.Block([C.Return(C.IntLit(0))]))
        lines = print_stmt(stmt)
        assert lines[0] == "if (c)"
        assert "else" in lines

    def test_while(self):
        stmt = C.While(C.Binary("<", C.Var("i"), C.IntLit(10)))
        stmt.body.add(C.Assign(C.Var("i"), C.Binary("+", C.Var("i"),
                                                    C.IntLit(1))))
        text = "\n".join(print_stmt(stmt))
        assert "while (i < 10)" in text
        assert "i = i + 1;" in text

    def test_switch_with_break_and_default(self):
        sw = C.Switch(C.Var("x"))
        case = C.SwitchCase([C.IntLit(1)])
        case.body.add(C.ExprStmt(C.Call("f", ())))
        sw.cases.append(case)
        sw.default = C.Block([C.ExprStmt(C.Call("g", ()))])
        text = "\n".join(print_stmt(sw))
        assert "case 1:" in text and "default:" in text
        assert text.count("break;") == 2

    def test_var_decl_forms(self):
        assert print_stmt(C.VarDecl("x", INT))[0] == "int x;"
        assert print_stmt(C.VarDecl("x", INT, C.IntLit(3)))[0] == \
            "int x = 3;"

    def test_array_declarator(self):
        stmt = C.VarDecl("buf", ArrayType(INT, 4))
        assert print_stmt(stmt)[0] == "int buf[4];"


class TestUnitPrinting:
    def make_unit(self):
        unit = C.TranslationUnit("u")
        unit.enums.append(C.EnumDecl("Event", ["EV_a", "EV_b"]))
        unit.externs.append(C.ExternFunction("probe",
                                             [C.Param("v", INT)]))
        cls = C.ClassDecl("M")
        cls.fields.append(C.Field("state", INT))
        cls.methods.append(C.Method("step", [C.Param("ev", INT)], VOID,
                                    C.Block([C.Return()]),
                                    is_virtual=True))
        unit.classes.append(cls)
        unit.globals.append(C.GlobalVar(
            "table", ArrayType(INT, 2),
            C.ArrayInit([C.IntLit(1), C.IntLit(2)]), is_const=True))
        body = C.Block([C.Return(C.IntLit(0))])
        unit.functions.append(C.Function("main_fn", [], INT, body))
        return unit

    def test_sections_present(self):
        text = print_unit(self.make_unit())
        assert "enum Event {" in text
        assert 'extern "C" int probe(int v);' in text
        assert "class M {" in text
        assert "virtual void step(int ev)" in text
        assert "const int table[2] = {" in text
        assert "int main_fn()" in text

    def test_enumerators_numbered(self):
        text = print_unit(self.make_unit())
        assert "EV_a = 0," in text and "EV_b = 1" in text

    def test_accessors(self):
        unit = self.make_unit()
        assert unit.enum("Event").value_of("EV_b") == 1
        assert unit.cls("M").method("step").is_virtual
        assert unit.function("main_fn").ret == INT
        with pytest.raises(KeyError):
            unit.cls("Nope")
        with pytest.raises(KeyError):
            unit.enum("Nope")
        with pytest.raises(KeyError):
            unit.function("Nope")

    def test_pure_virtual_rendering(self):
        cls = C.ClassDecl("B")
        cls.methods.append(C.Method("h", [], VOID, None, is_virtual=True))
        unit = C.TranslationUnit("u")
        unit.classes.append(cls)
        assert "= 0;" in print_unit(unit)
