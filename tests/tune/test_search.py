"""The search: lattice pruning, measurement, caching, persistence."""

import pytest

from repro.compiler import OptLevel
from repro.engine import ExperimentEngine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.optim import optimize, suggest_optimizations
from repro.tune import EventProfile, ObjectiveWeights, pass_subsets
from repro.tune.search import DEFAULT_LEVELS

FAST_LEVELS = (OptLevel.O0, OptLevel.OS)
FAST_PATTERNS = ["state-table", "flat-switch"]


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture(scope="module")
def rec(machine):
    return ExperimentEngine().tune(machine, patterns=FAST_PATTERNS,
                                   levels=FAST_LEVELS)


class TestPassSubsets:
    def test_powerset_in_order(self):
        prior = ["a", "b"]
        assert pass_subsets(prior) == [(), ("a",), ("b",), ("a", "b")]

    def test_empty_prior_keeps_baseline(self):
        assert pass_subsets([]) == [()]

    def test_duplicates_collapsed(self):
        assert pass_subsets(["a", "a"]) == [(), ("a",)]

    def test_subsets_preserve_prior_order(self):
        for subset in pass_subsets(["x", "y", "z"]):
            indices = [["x", "y", "z"].index(p) for p in subset]
            assert indices == sorted(indices)


class TestSearch:
    def test_lattice_dimensions(self, machine, rec):
        prior = [s.pass_name for s in suggest_optimizations(machine)]
        assert list(rec.prior) == prior
        expected = (len(FAST_PATTERNS) * len(FAST_LEVELS)
                    * 2 ** len(prior))
        assert len(rec.cells) == expected

    def test_winner_is_conformant_and_pareto_optimal(self, rec):
        assert rec.winner is not None
        assert rec.winner.conformant
        assert rec.winner in rec.frontier()
        assert rec.verify() == []

    def test_winner_beats_every_conformant_cell(self, rec):
        assert all(rec.winner.score <= c.score
                   for c in rec.conformant_cells)

    def test_record_identifies_the_question(self, machine, rec):
        from repro.engine.fingerprint import machine_fingerprint
        assert rec.machine_name == machine.name
        assert rec.machine_fingerprint == machine_fingerprint(machine)
        assert rec.target == "rt32"
        assert rec.objective == ObjectiveWeights()
        assert rec.profile == EventProfile()

    def test_winner_passes_actually_apply(self, machine, rec):
        # The winning subset must be a runnable selection as-is.
        report = optimize(machine, selection=list(rec.winner.passes))
        assert report.optimized is not None

    def test_deterministic_across_worker_pool_width(self, machine):
        serial = ExperimentEngine(jobs=1).tune(
            machine, patterns=FAST_PATTERNS, levels=FAST_LEVELS)
        parallel = ExperimentEngine(jobs=4).tune(
            machine, patterns=FAST_PATTERNS, levels=FAST_LEVELS)
        assert serial.to_json() == parallel.to_json()

    def test_narrower_lattice_is_a_different_record(self, machine):
        eng = ExperimentEngine()
        full = eng.tune(machine, patterns=FAST_PATTERNS,
                        levels=FAST_LEVELS)
        narrow = eng.tune(machine, patterns=["state-table"],
                          levels=FAST_LEVELS)
        assert {c.pattern for c in narrow.cells} == {"state-table"}
        assert len(narrow.cells) < len(full.cells)

    def test_default_levels_are_the_full_ladder(self):
        assert DEFAULT_LEVELS == (OptLevel.O0, OptLevel.O1, OptLevel.O2,
                                  OptLevel.OS)

    def test_flat_machine_tunes_too(self):
        rec = ExperimentEngine().tune(flat_machine_with_unreachable_state(),
                                      patterns=["nested-switch"],
                                      levels=(OptLevel.OS,))
        assert rec.winner is not None
        assert rec.verify() == []


class TestCaching:
    def test_second_tune_is_a_record_hit(self, machine):
        eng = ExperimentEngine()
        first = eng.tune(machine, patterns=FAST_PATTERNS,
                         levels=FAST_LEVELS)
        before = eng.stats.snapshot()
        second = eng.tune(machine, patterns=FAST_PATTERNS,
                          levels=FAST_LEVELS)
        after = eng.stats.snapshot()
        assert second is first
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1

    def test_cell_measurements_shared_with_dynamics(self, machine):
        # A warm engine that already ran the tuner serves the dynamics
        # harness's (pattern, level) cells from cache: the tuner's
        # baseline subset measurements are the same artifacts.
        eng = ExperimentEngine()
        eng.tune(machine, patterns=["state-table"],
                 levels=(OptLevel.OS,))
        before = eng.stats.snapshot()["misses"]
        eng.vm_conformance(machine, pattern="state-table",
                           level=OptLevel.OS)
        assert eng.stats.snapshot()["misses"] == before

    def test_persists_and_reloads_byte_identical(self, machine, tmp_path):
        cold = ExperimentEngine(cache_dir=str(tmp_path))
        first = cold.tune(machine, patterns=FAST_PATTERNS,
                          levels=FAST_LEVELS)
        warm = ExperimentEngine(cache_dir=str(tmp_path))
        second = warm.tune(machine, patterns=FAST_PATTERNS,
                           levels=FAST_LEVELS)
        assert second.to_json() == first.to_json()
        snap = warm.stats.snapshot()
        assert snap["misses"] == 0
        assert snap["disk_hits"] == snap["hits"] == 1

    def test_objective_change_misses(self, machine, tmp_path):
        eng = ExperimentEngine(cache_dir=str(tmp_path))
        eng.tune(machine, patterns=["state-table"], levels=(OptLevel.OS,))
        heavy_text = eng.tune(machine, patterns=["state-table"],
                              levels=(OptLevel.OS,),
                              objective=ObjectiveWeights(cycles=0.0,
                                                         text=1.0))
        assert heavy_text.objective.text == 1.0
        # Same measurements, different election key: the record is
        # recomputed but every cell measurement is served from cache.
        assert eng.stats.snapshot()["misses"] >= 2


class TestMetrics:
    def test_cell_outcomes_counted(self, machine):
        from repro.obs.metrics import REGISTRY
        counter = REGISTRY.counter("tune_cells_total", "")
        before = counter.value(outcome="conformant")
        ExperimentEngine().tune(machine, patterns=["state-table"],
                                levels=(OptLevel.OS,))
        assert counter.value(outcome="conformant") > before
