"""``python -m repro.tune`` search | show | apply."""

import json

import pytest

from repro.tune.__main__ import main, named_machine, parse_levels

FAST = ["--levels=-O0,-Os"]


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestArgs:
    def test_named_machines(self):
        assert named_machine("hierarchical").name == "Fig1Hier"
        assert named_machine("flat").name is not None
        assert named_machine("workload:3").name == "TuneWorkload3"

    def test_unknown_machine_exits(self):
        with pytest.raises(SystemExit):
            named_machine("nope")

    def test_parse_levels(self):
        from repro.compiler import OptLevel
        assert parse_levels("-O0,-Os") == [OptLevel.O0, OptLevel.OS]
        assert parse_levels(None) is None
        with pytest.raises(SystemExit):
            parse_levels("-O9")

    def test_unknown_target_is_exit_2(self, capsys):
        code, _, err = run(capsys, "search", "--target", "nope")
        assert code == 2
        assert "nope" in err


class TestSearch:
    def test_search_json_is_a_record(self, capsys, tmp_path):
        code, out, _ = run(capsys, "search", "--json",
                           "--cache-dir", str(tmp_path), *FAST)
        assert code == 0
        record = json.loads(out)
        assert record["winner"]["conformant"] is True
        assert record["machine_name"] == "Fig1Hier"

    def test_search_human_output_names_winner(self, capsys, tmp_path):
        code, out, _ = run(capsys, "search",
                           "--cache-dir", str(tmp_path), *FAST)
        assert code == 0
        assert "winner" in out
        assert "static prior" in out

    def test_warm_rerun_byte_identical_and_pure_hits(self, capsys,
                                                     tmp_path):
        stats = tmp_path / "stats.json"
        _, cold, _ = run(capsys, "search", "--json",
                         "--cache-dir", str(tmp_path / "store"), *FAST)
        code, warm, _ = run(capsys, "search", "--json",
                            "--cache-dir", str(tmp_path / "store"),
                            "--stats-out", str(stats), *FAST)
        assert code == 0
        assert warm == cold
        counters = json.loads(stats.read_text())
        assert counters["module"]["misses"] == 0
        assert counters["module"]["hits"] == 1


class TestShowApply:
    def test_show_before_search_fails(self, capsys, tmp_path):
        code, _, err = run(capsys, "show",
                           "--cache-dir", str(tmp_path), *FAST)
        assert code == 1
        assert "run 'python -m repro.tune search'" in err

    def test_show_after_search_prints_same_record(self, capsys, tmp_path):
        _, searched, _ = run(capsys, "search", "--json",
                             "--cache-dir", str(tmp_path), *FAST)
        code, shown, _ = run(capsys, "show", "--json",
                             "--cache-dir", str(tmp_path), *FAST)
        assert code == 0
        assert shown == searched

    def test_apply_reports_winner_and_size(self, capsys, tmp_path):
        run(capsys, "search", "--cache-dir", str(tmp_path), *FAST)
        code, out, _ = run(capsys, "apply", "--json",
                           "--cache-dir", str(tmp_path), *FAST)
        assert code == 0
        applied = json.loads(out)
        assert applied["total_size"] > 0
        assert applied["winner"]["conformant"] is True
