"""Record vocabulary: objective, profile, cells, election, round-trip."""

import json

import pytest

from repro.schema import schema_stamp
from repro.tune import (CellResult, EventProfile, ObjectiveWeights,
                        TuningError, TuningRecord)


def cell(pattern="state-table", level="-Os", passes=(), conformant=True,
         cycles=100.0, text=500, peak=50, objective=ObjectiveWeights()):
    return CellResult(pattern=pattern, level=level, passes=tuple(passes),
                      conformant=conformant, cycles_per_event=cycles,
                      text_bytes=text, peak_dispatch_cycles=peak,
                      score=objective.score(cycles, text, peak))


def record(cells, **overrides):
    kwargs = dict(machine_name="M", machine_fingerprint="f" * 64,
                  target="rt32", objective=ObjectiveWeights(),
                  profile=EventProfile(), prior=("remove-unused-events",),
                  cells=cells)
    kwargs.update(overrides)
    return TuningRecord.fresh(**kwargs)


class TestObjectiveWeights:
    def test_score_is_weighted_sum(self):
        w = ObjectiveWeights(cycles=2.0, text=0.5, peak=1.0)
        assert w.score(10.0, 100, 3) == pytest.approx(2 * 10 + 0.5 * 100 + 3)

    def test_default_ignores_peak(self):
        assert ObjectiveWeights().peak == 0.0

    def test_key_is_canonical(self):
        assert ObjectiveWeights().key() == \
            ObjectiveWeights(cycles=1.0, text=0.25, peak=0.0).key()
        assert ObjectiveWeights().key() != \
            ObjectiveWeights(text=0.3).key()

    def test_round_trip(self):
        w = ObjectiveWeights(cycles=3.0, text=0.1, peak=0.5)
        assert ObjectiveWeights.from_dict(w.to_dict()) == w


class TestEventProfile:
    def test_params_match_vm_conformance_knobs(self):
        assert EventProfile().params() == {
            "exhaustive_depth": 2, "n_random": 8, "random_length": 10,
            "seed": 0xFACE}

    def test_round_trip(self):
        p = EventProfile(exhaustive_depth=1, n_random=2,
                         random_length=5, seed=7)
        assert EventProfile.from_dict(p.to_dict()) == p


class TestElection:
    def test_winner_is_lowest_scoring_conformant(self):
        cells = [cell(cycles=50.0), cell(pattern="state-pattern",
                                         cycles=40.0)]
        rec = record(cells)
        assert rec.winner.pattern == "state-pattern"
        assert rec.verify() == []

    def test_rejected_cells_never_win(self):
        cheap_but_wrong = cell(cycles=1.0, text=1, conformant=False)
        honest = cell(pattern="state-pattern", cycles=90.0)
        rec = record([cheap_but_wrong, honest])
        assert rec.winner == honest
        assert rec.verify() == []
        assert rec.rejected_cells == [cheap_but_wrong]

    def test_all_rejected_means_no_winner(self):
        rec = record([cell(conformant=False)])
        assert rec.winner is None
        with pytest.raises(TuningError):
            rec.require_winner()

    def test_tie_broken_deterministically(self):
        a = cell(pattern="nested-switch")
        b = cell(pattern="state-table")
        assert record([a, b]).winner == record([b, a]).winner == a

    def test_winner_on_two_axis_pareto_frontier(self):
        # Default weights (peak weight 0) guarantee the scalar argmin
        # is Pareto-optimal in (cycles/event, text bytes).
        cells = [cell(cycles=100.0, text=100),
                 cell(pattern="state-pattern", cycles=50.0, text=300),
                 cell(pattern="flat-switch", cycles=120.0, text=90)]
        rec = record(cells)
        assert rec.winner in rec.frontier()
        assert rec.verify() == []

    def test_verify_flags_dominated_winner(self):
        dominated = cell(cycles=100.0, text=100)
        dominator = cell(pattern="state-pattern", cycles=90.0, text=90)
        rec = record([dominated, dominator])
        # Forge a bad record: winner not the elected cell.
        bad = TuningRecord(schema=rec.schema, machine_name=rec.machine_name,
                           machine_fingerprint=rec.machine_fingerprint,
                           target=rec.target, objective=rec.objective,
                           profile=rec.profile, prior=rec.prior,
                           cells=rec.cells, winner=dominated)
        problems = bad.verify()
        assert any("dominated" in p for p in problems)

    def test_frontier_excludes_dominated(self):
        dominated = cell(cycles=100.0, text=100)
        dominator = cell(pattern="state-pattern", cycles=90.0, text=90)
        frontier = record([dominated, dominator]).frontier()
        assert dominator in frontier and dominated not in frontier


class TestSerialization:
    def test_record_round_trips_byte_identically(self):
        rec = record([cell(), cell(pattern="state-pattern", cycles=80.0,
                                   passes=("remove-unused-events",))])
        restored = TuningRecord.from_dict(json.loads(rec.to_json()))
        assert restored == rec
        assert restored.to_json() == rec.to_json()

    def test_record_is_schema_stamped(self):
        assert record([cell()]).schema == schema_stamp()

    def test_cells_ordered_deterministically(self):
        a, b = cell(cycles=80.0), cell(pattern="state-pattern")
        assert record([a, b]).to_json() == record([b, a]).to_json()
