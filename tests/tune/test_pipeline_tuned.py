"""Tuned compilation through the pipeline and engine surfaces."""

import pytest

from repro.compiler import OptLevel
from repro.engine import ExperimentEngine
from repro.experiments.models import (
    hierarchical_machine_with_shadowed_composite)
from repro.pipeline import compile_machine, optimize_and_compare, \
    tuned_compile

FAST = dict(patterns=["state-table", "flat-switch"],
            levels=(OptLevel.O0, OptLevel.OS))


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture(scope="module")
def engine(machine):
    eng = ExperimentEngine()
    eng.tune(machine, **FAST)           # warm the measurements once
    return eng


class TestTunedCompile:
    def test_compiles_with_the_winning_config(self, machine, engine):
        tuned = tuned_compile(machine, engine=engine, **FAST)
        winner = tuned.record.require_winner()
        assert tuned.result.pattern == winner.pattern
        assert tuned.result.opt_level.value == winner.level

    def test_module_matches_direct_compile(self, machine, engine):
        tuned = tuned_compile(machine, engine=engine, **FAST)
        winner = tuned.winner
        from repro.optim import optimize
        optimized = optimize(machine,
                             selection=list(winner.passes)).optimized
        direct = compile_machine(optimized, pattern=winner.pattern,
                                 level=OptLevel(winner.level))
        assert tuned.total_size == direct.total_size

    def test_tuned_size_never_worse_than_measured_text(self, machine,
                                                       engine):
        tuned = tuned_compile(machine, engine=engine, **FAST)
        # The record's text_bytes is the VM image's encoded text; the
        # compiled module reports the same encoded size.
        assert tuned.result.compile_result.module.text_size == \
            tuned.winner.text_bytes

    def test_summary_mentions_winner_and_size(self, machine, engine):
        tuned = tuned_compile(machine, engine=engine, **FAST)
        assert tuned.winner.pattern in tuned.summary()
        assert str(tuned.total_size) in tuned.summary()


class TestTunedCompare:
    def test_tuned_flag_overrides_manual_choice(self, machine, engine):
        record = engine.tune(machine)    # default lattice
        result = optimize_and_compare(machine, pattern="nested-switch",
                                      level=OptLevel.O0, engine=engine,
                                      tuned=True)
        assert result.pattern == record.winner.pattern

    def test_tuned_compare_is_behavior_checked(self, machine, engine):
        result = optimize_and_compare(machine, engine=engine, tuned=True)
        assert result.equivalence.equivalent
