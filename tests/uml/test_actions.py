"""Tests for the action language: parser, evaluator, constant folding."""

import pytest

from repro.uml.actions import (Assign, Behavior, BinOp, BoolLit, CallExpr,
                               CallStmt, EvalError, IntLit, ParseError,
                               UnaryOp, VarRef, called_functions, const_fold,
                               eval_expr, free_variables, parse_expr)


class TestParser:
    @pytest.mark.parametrize("text,expected", [
        ("1", IntLit(1)),
        ("true", BoolLit(True)),
        ("false", BoolLit(False)),
        ("x", VarRef("x")),
        ("!x", UnaryOp("!", VarRef("x"))),
        ("-3", UnaryOp("-", IntLit(3))),
        ("1 + 2", BinOp("+", IntLit(1), IntLit(2))),
        ("f()", CallExpr("f")),
        ("f(1, x)", CallExpr("f", (IntLit(1), VarRef("x")))),
    ])
    def test_atoms_and_simple_forms(self, text, expected):
        assert parse_expr(text) == expected

    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == BinOp(
            "+", IntLit(1), BinOp("*", IntLit(2), IntLit(3)))

    def test_precedence_cmp_over_and(self):
        e = parse_expr("a < 1 && b > 2")
        assert e.op == "&&"
        assert e.lhs.op == "<"
        assert e.rhs.op == ">"

    def test_precedence_and_over_or(self):
        e = parse_expr("a || b && c")
        assert e.op == "||"
        assert e.rhs.op == "&&"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    @pytest.mark.parametrize("bad", ["", "1 +", "(1", "1 2", "@", "f(1,"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ParseError):
            parse_expr(bad)


class TestEval:
    def test_arithmetic(self):
        env = {"x": 7}
        assert eval_expr(parse_expr("x * 2 + 1"), env) == 15

    def test_c_style_division_truncates_toward_zero(self):
        assert eval_expr(parse_expr("0 - 7"), {}) == -7
        assert eval_expr(BinOp("/", IntLit(-7), IntLit(2)), {}) == -3
        assert eval_expr(BinOp("%", IntLit(-7), IntLit(2)), {}) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(EvalError):
            eval_expr(parse_expr("1 / 0"), {})

    def test_short_circuit_and(self):
        # (false && (1/0 == 0)) must not evaluate the division
        e = parse_expr("false && 1 / 0 == 0")
        assert eval_expr(e, {}) is False

    def test_short_circuit_or(self):
        e = parse_expr("true || 1 / 0 == 0")
        assert eval_expr(e, {}) is True

    def test_unbound_variable_raises(self):
        with pytest.raises(EvalError):
            eval_expr(VarRef("ghost"), {})

    def test_external_call(self):
        e = parse_expr("sensor() + 1")
        assert eval_expr(e, {}, {"sensor": lambda: 41}) == 42

    def test_unbound_external_raises(self):
        with pytest.raises(EvalError):
            eval_expr(parse_expr("mystery()"), {})

    def test_comparisons(self):
        env = {"a": 3, "b": 3}
        assert eval_expr(parse_expr("a == b"), env) is True
        assert eval_expr(parse_expr("a != b"), env) is False
        assert eval_expr(parse_expr("a <= b && a >= b"), env) is True


class TestConstFold:
    def test_folds_constant_arithmetic(self):
        assert const_fold(parse_expr("2 * 3 + 4")) == IntLit(10)

    def test_folds_boolean_identities(self):
        assert const_fold(parse_expr("true && x > 1")) == parse_expr("x > 1")
        assert const_fold(parse_expr("x > 1 || true")) == BoolLit(True)
        assert const_fold(parse_expr("false && x > 1")) == BoolLit(False)
        assert const_fold(parse_expr("false || x > 1")) == parse_expr("x > 1")

    def test_does_not_fold_external_calls(self):
        e = parse_expr("f() && false")
        folded = const_fold(e)
        # The call may have side effects; && with a false right side still
        # must evaluate the left (C++ evaluates left first anyway) - our
        # folder keeps the conjunction.
        assert folded == BoolLit(False) or "f" in str(folded)

    def test_fold_division_by_zero_is_kept_symbolic(self):
        e = parse_expr("1 / 0")
        assert const_fold(e) == e

    def test_helpers(self):
        e = parse_expr("f(x) + y")
        assert free_variables(e) == {"x", "y"}
        assert called_functions(e) == {"f"}


class TestBehavior:
    def test_behavior_truthiness(self):
        assert not Behavior()
        assert Behavior(statements=(Assign("x", IntLit(1)),))

    def test_behavior_expressions_iteration(self):
        b = Behavior(statements=(Assign("x", IntLit(1)),
                                 CallStmt(CallExpr("f", (VarRef("x"),)))))
        exprs = list(b.expressions())
        assert len(exprs) == 2
