"""Tests for the metamodel and the fluent builder."""

import pytest

from repro.uml import (ModelError, PseudostateKind, StateMachineBuilder,
                       TransitionKind, calls, clone_machine, parse_expr)


def simple_machine():
    b = StateMachineBuilder("M")
    b.state("A")
    b.state("B")
    b.initial_to("A")
    b.transition("A", "B", on="go")
    b.transition("B", "final", on="stop")
    return b.build()


class TestBuilder:
    def test_builds_states_and_transitions(self):
        m = simple_machine()
        assert {s.name for s in m.all_states()} == {"A", "B"}
        assert len(list(m.all_transitions())) == 3

    def test_initial_pseudostate_created(self):
        m = simple_machine()
        assert m.top.initial is not None
        assert m.top.initial.kind is PseudostateKind.INITIAL

    def test_final_state_created_on_demand(self):
        m = simple_machine()
        assert len(m.top.final_states()) == 1

    def test_events_declared_once(self):
        b = StateMachineBuilder("M")
        b.state("A")
        b.state("B")
        b.initial_to("A")
        b.transition("A", "B", on="go")
        b.transition("B", "A", on="go")
        m = b.build()
        assert len(m.events) == 1

    def test_unknown_vertex_name_raises(self):
        b = StateMachineBuilder("M")
        b.state("A")
        with pytest.raises(ModelError):
            b.transition("A", "Missing", on="go")

    def test_composite_builder(self):
        b = StateMachineBuilder("H")
        inner = b.composite("C")
        inner.state("C1")
        inner.initial_to("C1")
        inner.transition("C1", "final", on="done_inner")
        b.initial_to("C")
        b.transition("C", "final", on="out")
        m = b.build()
        c = m.find_state("C")
        assert c.is_composite
        assert {s.name for s in c.descendant_states()} == {"C1"}

    def test_internal_transition(self):
        b = StateMachineBuilder("M")
        b.state("A")
        b.initial_to("A")
        tr = b.internal("A", on="tick", effect=calls("beep"))
        b.transition("A", "final", on="stop")
        m = b.build()
        assert tr.kind is TransitionKind.INTERNAL
        assert tr.source is tr.target

    def test_completion_transition_detected(self):
        b = StateMachineBuilder("M")
        b.state("A")
        b.initial_to("A")
        tr = b.completion("A", "final")
        m = b.build()
        assert tr.is_completion
        assert m.find_state("A").completion_transitions() == [tr]

    def test_guard_parsing_via_string(self):
        b = StateMachineBuilder("M")
        b.attribute("n", 0)
        b.state("A")
        b.initial_to("A")
        tr = b.transition("A", "final", on="go", guard="n > 3 && n < 10")
        b.build()
        assert tr.guard == parse_expr("n > 3 && n < 10")


class TestModelQueries:
    def test_incoming_outgoing(self):
        m = simple_machine()
        a = m.find_state("A")
        b = m.find_state("B")
        assert [t.target for t in a.outgoing()] == [b]
        assert [t.source for t in b.incoming()] == [a]

    def test_find_state_raises_for_missing(self):
        m = simple_machine()
        with pytest.raises(ModelError):
            m.find_state("Zed")

    def test_qualified_names(self):
        m = simple_machine()
        a = m.find_state("A")
        assert a.qualified_name == "M::top::A"

    def test_remove_vertex_requires_no_incident_transitions(self):
        m = simple_machine()
        a = m.find_state("A")
        with pytest.raises(ModelError):
            m.top.remove_vertex(a)

    def test_remove_transition_then_vertex(self):
        m = simple_machine()
        b_state = m.find_state("B")
        for tr in list(b_state.incoming()) + list(b_state.outgoing()):
            tr.owner.remove_transition(tr)
        m.top.remove_vertex(b_state)
        assert "B" not in {s.name for s in m.all_states()}


class TestClone:
    def test_clone_is_deep_and_equal(self):
        m = simple_machine()
        c = clone_machine(m)
        assert c is not m
        assert {s.name for s in c.all_states()} == {"A", "B"}
        # mutating the clone leaves the original intact
        b_state = c.find_state("B")
        for tr in list(b_state.incoming()) + list(b_state.outgoing()):
            tr.owner.remove_transition(tr)
        c.top.remove_vertex(b_state)
        assert "B" in {s.name for s in m.all_states()}
