"""Tests for well-formedness validation and JSON serialization."""

import pytest

from repro.uml import (Assign, Behavior, CallExpr, CallStmt, EmitStmt,
                       FinalState, IntLit, ModelError, Pseudostate,
                       PseudostateKind, Region, State, StateMachine,
                       StateMachineBuilder, Transition, ValidationError,
                       calls, check_machine, clone_machine, dumps_machine,
                       loads_machine, machine_from_dict, machine_to_dict,
                       parse_expr, validate_machine)
from repro.uml.serialize import expr_from_dict, expr_to_dict


def valid_machine():
    b = StateMachineBuilder("V")
    b.attribute("n", 1)
    b.state("A", entry=calls("a_in"))
    sub = b.composite("C")
    sub.state("C1")
    sub.initial_to("C1")
    sub.transition("C1", "final", on="fin")
    b.initial_to("A")
    b.transition("A", "C", on="go", guard="n > 0",
                 effect=[Assign("n", parse_expr("n + 1"))])
    b.completion("C", "A")
    b.transition("A", "final", on="stop")
    return b.build()


class TestValidation:
    def test_valid_machine_passes(self):
        assert not check_machine(valid_machine())

    def test_machine_without_region(self):
        machine = StateMachine("Empty")
        issues = check_machine(machine)
        assert any(i.code == "SM001" for i in issues)

    def test_two_initials_rejected(self):
        machine = StateMachine("TwoInit")
        region = machine.top
        region.add_vertex(Pseudostate(PseudostateKind.INITIAL, "i1"))
        region.add_vertex(Pseudostate(PseudostateKind.INITIAL, "i2"))
        issues = check_machine(machine)
        assert any(i.code == "RG001" for i in issues)

    def test_duplicate_sibling_names_rejected(self):
        machine = StateMachine("Dup")
        machine.top.add_vertex(State("X"))
        machine.top.add_vertex(State("X"))
        issues = check_machine(machine)
        assert any(i.code == "RG002" for i in issues)

    def test_initial_with_trigger_rejected(self):
        machine = StateMachine("IT")
        init = machine.top.add_vertex(
            Pseudostate(PseudostateKind.INITIAL))
        target = machine.top.add_vertex(State("A"))
        from repro.uml import SignalEvent
        ev = machine.declare_event(SignalEvent("x"))
        machine.top.add_transition(Transition(init, target, triggers=[ev]))
        issues = check_machine(machine)
        assert any(i.code == "PS002" for i in issues)

    def test_initial_with_guard_rejected(self):
        machine = StateMachine("IG")
        init = machine.top.add_vertex(Pseudostate(PseudostateKind.INITIAL))
        target = machine.top.add_vertex(State("A"))
        machine.top.add_transition(
            Transition(init, target, guard=parse_expr("1 < 2")))
        issues = check_machine(machine)
        assert any(i.code == "PS003" for i in issues)

    def test_final_with_outgoing_rejected(self):
        machine = StateMachine("FO")
        init = machine.top.add_vertex(Pseudostate(PseudostateKind.INITIAL))
        fin = machine.top.add_vertex(FinalState("final"))
        state = machine.top.add_vertex(State("A"))
        machine.top.add_transition(Transition(init, state))
        machine.top.add_transition(Transition(fin, state))
        issues = check_machine(machine)
        assert any(i.code == "FS001" for i in issues)

    def test_guard_over_undeclared_attribute_rejected(self):
        b = StateMachineBuilder("UG")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "final", on="x", guard=parse_expr("ghost > 0"))
        machine = b.machine  # skip build() validation
        issues = check_machine(machine)
        assert any(i.code == "GD001" for i in issues)

    def test_validation_error_message_lists_issues(self):
        machine = StateMachine("Bad")
        with pytest.raises(ValidationError) as err:
            validate_machine(machine)
        assert "SM001" in str(err.value)

    def test_called_operations_auto_declared(self):
        machine = valid_machine()
        assert "a_in" in machine.context.operations

    def test_stuck_choice_detected(self):
        machine = StateMachine("SC")
        machine.top.add_vertex(Pseudostate(PseudostateKind.CHOICE, "ch"))
        issues = check_machine(machine)
        assert any(i.code == "PS005" for i in issues)


class TestSerialization:
    def test_round_trip_structure(self):
        machine = valid_machine()
        clone = loads_machine(dumps_machine(machine))
        assert {s.name for s in clone.all_states()} == \
            {s.name for s in machine.all_states()}
        assert len(list(clone.all_transitions())) == \
            len(list(machine.all_transitions()))
        assert clone.context.attributes == machine.context.attributes

    def test_round_trip_is_stable(self):
        machine = valid_machine()
        once = dumps_machine(machine)
        twice = dumps_machine(loads_machine(once))
        assert once == twice

    def test_guards_and_effects_survive(self):
        machine = valid_machine()
        clone = loads_machine(dumps_machine(machine))
        tr = next(t for t in clone.all_transitions()
                  if t.describe().startswith("A -go"))
        assert tr.guard == parse_expr("n > 0")
        assert isinstance(tr.effect.statements[0], Assign)

    def test_hierarchy_survives(self):
        machine = valid_machine()
        clone = loads_machine(dumps_machine(machine))
        c = clone.find_state("C")
        assert c.is_composite
        assert {s.name for s in c.descendant_states()} == {"C1"}

    def test_events_survive_with_kinds(self):
        from repro.uml import TimeEvent
        b = StateMachineBuilder("Ev")
        b.state("A")
        b.initial_to("A")
        b.transition("A", "A", on=b.time_event(250))
        b.transition("A", "final", on="stop")
        clone = loads_machine(dumps_machine(b.build()))
        kinds = {type(e).__name__ for e in clone.events.values()}
        assert "TimeEvent" in kinds

    def test_emit_statement_survives(self):
        b = StateMachineBuilder("Em")
        b.state("A", entry=Behavior(statements=(EmitStmt("ping"),)))
        b.initial_to("A")
        b.transition("A", "final", on="ping")
        clone = loads_machine(dumps_machine(b.build()))
        a = clone.find_state("A")
        assert isinstance(a.entry.statements[0], EmitStmt)

    def test_unsupported_format_version_rejected(self):
        data = machine_to_dict(valid_machine())
        data["format"] = 999
        with pytest.raises(ModelError):
            machine_from_dict(data)

    def test_expr_round_trip(self):
        for text in ("1", "true", "x", "!x", "-y", "a + b * c",
                     "f(x, 2) >= 3 && !done || count % 2 == 0"):
            expr = parse_expr(text)
            assert expr_from_dict(expr_to_dict(expr)) == expr

    def test_clone_preserves_behavior(self):
        from repro.optim import check_equivalence
        machine = valid_machine()
        report = check_equivalence(machine, clone_machine(machine),
                                   n_random=5)
        assert report.equivalent

    def test_save_and_load_file(self, tmp_path):
        from repro.uml import save_machine, load_machine
        machine = valid_machine()
        path = tmp_path / "m.json"
        save_machine(machine, str(path))
        assert dumps_machine(load_machine(str(path))) == \
            dumps_machine(machine)
