"""Cache backends: memory/disk/tiered semantics, stats attribution,
schema stamping of fingerprints, thread-safe statistics."""

import threading

import pytest

import repro.schema
from repro.engine import (CompileCache, DiskBackend, ExperimentEngine,
                          MemoryBackend, TieredBackend, backend_from_spec,
                          compile_fingerprint)
from repro.engine.cache import CacheStats
from repro.compiler import OptLevel
from repro.experiments.models import flat_machine_with_unreachable_state
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def machine():
    return flat_machine_with_unreachable_state()


class TestMemoryBackend:
    def test_load_store(self):
        backend = MemoryBackend()
        backend.store("k", 1)
        assert backend.load("k") == (1, "memory")
        assert "k" in backend and len(backend) == 1
        backend.clear()
        with pytest.raises(KeyError):
            backend.load("k")


class TestDiskBackend:
    def test_load_store_persists(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        backend.store("k", {"v": 9})
        value, origin = backend.load("k")
        assert value == {"v": 9} and origin == "disk"
        again = DiskBackend(str(tmp_path / "store"))
        assert again.load("k")[0] == {"v": 9}

    def test_accepts_store_instance(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        backend = DiskBackend(store)
        backend.store("k", 5)
        assert store.load("k") == 5

    def test_unpicklable_value_degrades_to_uncached(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        backend.store("k", threading.Lock())      # unpicklable
        with pytest.raises(KeyError):
            backend.load("k")


class TestTieredBackend:
    def test_promotes_disk_hits_to_memory(self, tmp_path):
        disk = DiskBackend(str(tmp_path / "store"))
        disk.store("k", "value")
        tiered = TieredBackend(disk)
        value, origin = tiered.load("k")
        assert (value, origin) == ("value", "disk")
        value, origin = tiered.load("k")
        assert (value, origin) == ("value", "memory")

    def test_store_writes_both_tiers(self, tmp_path):
        tiered = TieredBackend(str(tmp_path / "store"))
        tiered.store("k", 7)
        assert tiered.memory.load("k")[0] == 7
        assert tiered.disk.load("k")[0] == 7
        assert len(tiered) == 1

    def test_clear_clears_both(self, tmp_path):
        tiered = TieredBackend(str(tmp_path / "store"))
        tiered.store("k", 7)
        tiered.clear()
        assert "k" not in tiered and len(tiered) == 0


class TestBackendFromSpec:
    def test_defaults(self, tmp_path):
        assert isinstance(backend_from_spec(), MemoryBackend)
        assert isinstance(backend_from_spec(cache_dir=str(tmp_path)),
                          TieredBackend)

    def test_explicit_specs(self, tmp_path):
        assert isinstance(backend_from_spec("memory"), MemoryBackend)
        assert isinstance(
            backend_from_spec("disk", cache_dir=str(tmp_path)),
            DiskBackend)
        assert isinstance(
            backend_from_spec("tiered", cache_dir=str(tmp_path)),
            TieredBackend)

    def test_disk_specs_need_a_directory(self):
        with pytest.raises(ValueError):
            backend_from_spec("disk")
        with pytest.raises(ValueError):
            backend_from_spec("nonsense")


class TestCacheOverBackends:
    def test_disk_cache_warm_across_cache_instances(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return "artifact"

        cold = CompileCache(DiskBackend(str(tmp_path / "store")))
        assert cold.get_or_compute("k", compute) == "artifact"
        warm = CompileCache(DiskBackend(str(tmp_path / "store")))
        assert warm.get_or_compute("k", compute) == "artifact"
        assert len(calls) == 1
        assert warm.stats.hits == 1 and warm.stats.disk_hits == 1

    def test_memory_hits_are_not_disk_hits(self):
        cache = CompileCache()
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        assert cache.stats.hits == 1 and cache.stats.disk_hits == 0

    def test_engine_cache_dir_roundtrip(self, machine, tmp_path):
        cold = ExperimentEngine(cache_dir=str(tmp_path / "cache"))
        reference = cold.compile_machine(machine)
        warm = ExperimentEngine(cache_dir=str(tmp_path / "cache"))
        restored = warm.compile_machine(machine)
        assert restored.module.listing() == reference.module.listing()
        assert restored.total_size == reference.total_size
        assert warm.stats.disk_hits == 1 and warm.stats.misses == 0

    def test_engine_rejects_conflicting_cache_args(self):
        with pytest.raises(ValueError):
            ExperimentEngine(cache=CompileCache(), cache_dir="/tmp/x")

    def test_describe_names_the_backend(self, tmp_path):
        engine = ExperimentEngine(cache_dir=str(tmp_path))
        assert "backend=tiered" in engine.describe()
        assert "disk" in engine.stats.summary()


class TestSchemaStampedFingerprints:
    def test_fingerprint_changes_with_schema_version(self, machine,
                                                     monkeypatch):
        """The satellite fix: bumping the schema generation must change
        every key, so stale on-disk artifacts become misses."""
        before = compile_fingerprint(machine, "nested-switch", OptLevel.OS,
                                     None)
        monkeypatch.setattr(repro.schema, "SCHEMA_VERSION", 999)
        after = compile_fingerprint(machine, "nested-switch", OptLevel.OS,
                                    None)
        assert before != after

    def test_stale_schema_entries_miss_on_disk(self, machine, tmp_path,
                                               monkeypatch):
        cache_dir = str(tmp_path / "cache")
        old = ExperimentEngine(cache_dir=cache_dir)
        old.compile_machine(machine)
        monkeypatch.setattr(repro.schema, "SCHEMA_VERSION", 999)
        new = ExperimentEngine(cache_dir=cache_dir)
        new.compile_machine(machine)
        assert new.stats.misses == 1 and new.stats.disk_hits == 0


class TestThreadSafeStats:
    def test_concurrent_updates_are_not_lost(self):
        """The satellite fix: counters bumped from many worker threads
        must not under-count."""
        stats = CacheStats()
        n_threads, n_each = 8, 2500

        def bump():
            for i in range(n_each):
                if i % 2:
                    stats.record_hit("disk" if i % 4 == 1 else "memory")
                else:
                    stats.record_miss()

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.misses == n_threads * n_each // 2
        assert stats.hits == n_threads * n_each // 2
        assert stats.disk_hits == n_threads * n_each // 4
        assert stats.lookups == n_threads * n_each


class TestStoreFailureResilience:
    def test_backend_store_error_never_hangs_waiters(self):
        """A backend write blowing up mid-publish must still resolve
        the in-flight future and retire the key (review regression:
        waiters hung forever and the key was poisoned)."""

        class ExplodingBackend(MemoryBackend):
            def store(self, key, value):
                raise RuntimeError("disk on fire")

        cache = CompileCache(ExplodingBackend())
        barrier = threading.Event()
        waiter_result = []

        def compute():
            barrier.wait(5)
            return "computed"

        def waiter():
            waiter_result.append(cache.get_or_compute("k", lambda: "x"))

        owner = threading.Thread(
            target=lambda: pytest.raises(RuntimeError,
                                         cache.get_or_compute, "k",
                                         compute))
        owner.start()
        thread = threading.Thread(target=waiter)
        thread.start()
        barrier.set()
        owner.join(timeout=5)
        thread.join(timeout=5)
        assert not thread.is_alive(), "waiter hung on the future"
        assert waiter_result == ["computed"]
        # the key is not poisoned: a later lookup just recomputes
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: "again")
