"""Fingerprint stability and key-component sensitivity."""

from repro.compiler import OptLevel
from repro.engine import (compile_fingerprint, equivalence_fingerprint,
                          machine_fingerprint, optimize_fingerprint)
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.semantics import SemanticsConfig
from repro.uml import clone_machine


def _fp(**overrides):
    defaults = dict(machine=hierarchical_machine_with_shadowed_composite(),
                    pattern="nested-switch", level=OptLevel.OS,
                    target=None, semantics=SemanticsConfig(),
                    capture_dumps=False)
    defaults.update(overrides)
    return compile_fingerprint(**defaults)


class TestMachineFingerprint:
    def test_stable_across_rebuilds(self):
        a = hierarchical_machine_with_shadowed_composite()
        b = hierarchical_machine_with_shadowed_composite()
        assert a is not b
        assert machine_fingerprint(a) == machine_fingerprint(b)

    def test_stable_across_clone(self):
        machine = generate_machine(WorkloadSpec(n_live=4, n_dead=1))
        assert machine_fingerprint(machine) == \
            machine_fingerprint(clone_machine(machine))

    def test_different_machines_differ(self):
        assert machine_fingerprint(flat_machine_with_unreachable_state()) \
            != machine_fingerprint(
                hierarchical_machine_with_shadowed_composite())


class TestCompileFingerprint:
    def test_identical_jobs_collide(self):
        assert _fp() == _fp()

    def test_machine_content_changes_key(self):
        assert _fp() != _fp(
            machine=flat_machine_with_unreachable_state())

    def test_pattern_changes_key(self):
        assert _fp() != _fp(pattern="state-table")

    def test_level_changes_key(self):
        assert _fp() != _fp(level=OptLevel.O0)

    def test_target_changes_key(self):
        assert _fp(target="rt32") != _fp(target="rt16")

    def test_default_target_resolves_to_its_name(self):
        # None resolves to the default target's registered name.
        assert _fp(target=None) == _fp(target="rt32")

    def test_semantics_changes_key(self):
        assert _fp() != _fp(
            semantics=SemanticsConfig(completion_priority=False))

    def test_capture_dumps_changes_key(self):
        assert _fp() != _fp(capture_dumps=True)


class TestOtherFingerprints:
    def test_optimize_selection_changes_key(self):
        machine = hierarchical_machine_with_shadowed_composite()
        default = optimize_fingerprint(machine, None)
        assert default != optimize_fingerprint(machine, ["simplify-guards"])
        assert default == optimize_fingerprint(machine, None)

    def test_optimize_semantics_changes_key(self):
        machine = hierarchical_machine_with_shadowed_composite()
        assert optimize_fingerprint(machine, None) != optimize_fingerprint(
            machine, None, SemanticsConfig(completion_priority=False))

    def test_equivalence_is_ordered(self):
        a = flat_machine_with_unreachable_state()
        b = hierarchical_machine_with_shadowed_composite()
        assert equivalence_fingerprint(a, b) != equivalence_fingerprint(b, a)
