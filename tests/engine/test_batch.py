"""Batch planner dedup + serial/parallel determinism."""

import pytest

from repro.compiler import OptLevel
from repro.engine import (CompareJob, CompileJob, ExperimentEngine,
                          plan_batch)
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.experiments.workload import WorkloadSpec, generate_machine


class TestPlanBatch:
    def test_dedupes_identical_jobs(self):
        machine = hierarchical_machine_with_shadowed_composite()
        rebuilt = hierarchical_machine_with_shadowed_composite()
        jobs = [CompileJob(machine, "nested-switch"),
                CompileJob(machine, "state-table"),
                # distinct object, identical content -> same fingerprint
                CompileJob(rebuilt, "nested-switch")]
        plan = plan_batch(jobs)
        assert plan.n_jobs == 3
        assert plan.n_unique == 2
        assert plan.n_deduplicated == 1

    def test_keeps_input_order(self):
        machine = flat_machine_with_unreachable_state()
        jobs = [CompileJob(machine, "state-table"),
                CompileJob(machine, "nested-switch"),
                CompileJob(machine, "state-table")]
        plan = plan_batch(jobs)
        assert plan.order[0] == plan.order[2] != plan.order[1]

    def test_compare_jobs_fingerprint_components(self):
        machine = flat_machine_with_unreachable_state()
        base = CompareJob(machine).fingerprint()
        assert base == CompareJob(machine).fingerprint()
        assert base != CompareJob(machine, pattern="state-table"
                                  ).fingerprint()
        assert base != CompareJob(machine, check_behavior=False
                                  ).fingerprint()
        assert base != CompareJob(machine, target="rt16").fingerprint()
        assert base != CompareJob(
            machine, model_optimizations=["simplify-guards"]).fingerprint()


class TestBatchExecution:
    @pytest.fixture(scope="class")
    def grid(self):
        machines = [generate_machine(WorkloadSpec(n_live=3, n_dead=d))
                    for d in (0, 1, 2)]
        return [CompileJob(m, pattern, OptLevel.OS)
                for m in machines
                for pattern in ("nested-switch", "state-table")]

    def test_parallel_equals_serial(self, grid):
        serial = ExperimentEngine(jobs=1).run_batch(grid)
        parallel = ExperimentEngine(jobs=4).run_batch(grid)
        assert [r.total_size for r in serial] == \
            [r.total_size for r in parallel]
        assert [r.module.listing() for r in serial] == \
            [r.module.listing() for r in parallel]

    def test_duplicates_share_one_result(self, grid):
        eng = ExperimentEngine(jobs=2)
        results = eng.run_batch(grid + grid)
        assert eng.stats.misses == len(grid)
        for first, second in zip(results[:len(grid)], results[len(grid):]):
            assert first is second

    def test_hit_miss_counts_deterministic_across_jobs(self, grid):
        doubled = grid + grid
        counts = []
        for jobs in (1, 2, 8):
            eng = ExperimentEngine(jobs=jobs)
            eng.run_batch(doubled)
            counts.append((eng.stats.hits, eng.stats.misses))
        assert len(set(counts)) == 1

    def test_compare_batch_parallel_equals_serial(self):
        machines = [generate_machine(WorkloadSpec(n_live=3, n_dead=d))
                    for d in (0, 2)]
        jobs = [CompareJob(m, check_behavior=False) for m in machines]
        serial = ExperimentEngine(jobs=1).compare_batch(jobs)
        parallel = ExperimentEngine(jobs=4).compare_batch(jobs)
        assert [c.summary() for c in serial] == \
            [c.summary() for c in parallel]

    def test_compare_batch_shares_optimized_model(self):
        """The unoptimized baseline's sibling — one optimize() feeds
        every pattern of the grid (the dedicated shared sub-work)."""
        machine = hierarchical_machine_with_shadowed_composite()
        eng = ExperimentEngine()
        eng.compare_batch([CompareJob(machine, p, check_behavior=False)
                           for p in ("nested-switch", "state-table",
                                     "state-pattern")])
        # 1 optimize + 6 compiles = 7 misses; 2 repeat optimize lookups.
        assert eng.stats.misses == 7
        assert eng.stats.hits == 2
