"""CompileCache correctness: miss -> hit, stats, concurrency dedup."""

import threading

import pytest

from repro.compiler import OptLevel
from repro.engine import CompileCache, ExperimentEngine
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.pipeline import compile_machine
from repro.semantics import SemanticsConfig


class TestCompileCache:
    def test_miss_then_hit(self):
        cache = CompileCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_clear_forgets_values_keeps_stats(self):
        cache = CompileCache()
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert cache.get_or_compute("k", lambda: 2) == 2
        assert cache.stats.misses == 2

    def test_failed_compute_is_not_cached(self):
        cache = CompileCache()

        def boom():
            raise ValueError("transient")

        with pytest.raises(ValueError):
            cache.get_or_compute("k", boom)
        assert cache.get_or_compute("k", lambda: "ok") == "ok"

    def test_concurrent_callers_compute_once(self):
        cache = CompileCache()
        gate = threading.Event()
        calls = []

        def slow():
            gate.wait(5)
            calls.append(1)
            return "value"

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(
                cache.get_or_compute("k", slow))) for _ in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert results == ["value"] * 4
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 3


class TestEngineCacheKeys:
    """Engine-level: a hit needs *every* key component to match."""

    @pytest.fixture(scope="class")
    def machine(self):
        return hierarchical_machine_with_shadowed_composite()

    def test_identical_job_hits(self, machine):
        eng = ExperimentEngine()
        first = eng.compile_machine(machine, "nested-switch")
        again = eng.compile_machine(machine, "nested-switch")
        assert again is first  # same cached object, not a recompute
        assert eng.stats.hits == 1 and eng.stats.misses == 1

    def test_each_component_misses(self, machine):
        eng = ExperimentEngine()
        eng.compile_machine(machine, "nested-switch", OptLevel.OS,
                            target="rt32")
        variants = [
            dict(pattern="state-table"),
            dict(level=OptLevel.O0),
            dict(target="rt16"),
            dict(semantics=SemanticsConfig(completion_priority=False)),
            dict(capture_dumps=True),
        ]
        for overrides in variants:
            kwargs = dict(pattern="nested-switch", level=OptLevel.OS,
                          target="rt32", capture_dumps=False)
            kwargs.update(overrides)
            eng.compile_machine(machine, **kwargs)
        assert eng.stats.misses == 1 + len(variants)
        assert eng.stats.hits == 0

    def test_cached_result_matches_direct_pipeline(self, machine):
        eng = ExperimentEngine()
        cached = eng.compile_machine(machine, "state-table")
        direct = compile_machine(machine, "state-table")
        assert cached.total_size == direct.total_size
        assert cached.module.listing() == direct.module.listing()

    def test_shared_cache_across_engines(self, machine):
        cache = CompileCache()
        ExperimentEngine(cache=cache).compile_machine(machine)
        ExperimentEngine(cache=cache).compile_machine(machine)
        assert cache.stats.hits == 1 and cache.stats.misses == 1


class TestStatsSnapshot:
    def test_snapshot_shape(self):
        cache = CompileCache(name="unit-test")
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 2)
        snap = cache.stats.snapshot()
        assert snap == {"hits": 1, "misses": 1, "disk_hits": 0,
                        "lookups": 2, "hit_rate": 0.5}

    def test_snapshot_is_torn_read_free(self):
        """hits + misses must always equal lookups inside one snapshot,
        even while other threads are recording — the whole point of
        taking every counter under a single lock acquisition."""
        cache = CompileCache()
        stop = threading.Event()

        def pound():
            key = 0
            while not stop.is_set():
                cache.get_or_compute(key % 4, lambda: key)
                key += 1

        writers = [threading.Thread(target=pound) for _ in range(3)]
        for w in writers:
            w.start()
        try:
            for _ in range(2000):
                snap = cache.stats.snapshot()
                assert snap["hits"] + snap["misses"] == snap["lookups"]
                expected = snap["hits"] / snap["lookups"] \
                    if snap["lookups"] else 0.0
                assert snap["hit_rate"] == expected
        finally:
            stop.set()
            for w in writers:
                w.join()

    def test_named_cache_publishes_into_the_registry(self):
        from repro.obs.metrics import REGISTRY
        hits = REGISTRY.counter("engine_cache_hits_total")
        misses = REGISTRY.counter("engine_cache_misses_total")
        base_h = hits.value(cache="reg-probe", origin="memory")
        base_m = misses.value(cache="reg-probe")
        cache = CompileCache(name="reg-probe")
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 2)
        assert misses.value(cache="reg-probe") == base_m + 1
        assert hits.value(cache="reg-probe", origin="memory") == base_h + 1
