"""The experiment harnesses through the engine: identical output,
warm-cache reruns, --jobs CLI plumbing."""

from repro.engine import ExperimentEngine
from repro.experiments import figure1, sweeps, table1, table2
from repro.experiments.__main__ import main as cli_main


def _full_suite(engine):
    return "\n".join(module.main(engine=engine)
                     for module in (figure1, table1, table2, sweeps))


class TestEngineReplumb:
    def test_serial_and_parallel_tables_byte_identical(self):
        serial = _full_suite(ExperimentEngine(jobs=1))
        parallel = _full_suite(ExperimentEngine(jobs=4))
        assert serial == parallel

    def test_warm_cache_second_run_is_mostly_hits(self):
        """Acceptance: rerunning the full suite on a shared engine is
        >90 % cache hits and byte-identical output."""
        engine = ExperimentEngine(jobs=2)
        first = _full_suite(engine)
        hits_cold, misses_cold = engine.stats.hits, engine.stats.misses
        second = _full_suite(engine)
        assert second == first
        warm_hits = engine.stats.hits - hits_cold
        warm_misses = engine.stats.misses - misses_cold
        warm_rate = warm_hits / (warm_hits + warm_misses)
        assert warm_rate > 0.90, engine.stats.summary()
        assert warm_misses == 0  # the rerun recomputed nothing

    def test_run_table1_accepts_jobs_knob(self):
        serial = table1.run_table1(jobs=1)
        parallel = table1.run_table1(jobs=3)
        assert serial == parallel

    def test_sweeps_parallel_equals_serial_over_grid(self):
        serial = sweeps.unreachable_sweep(dead_counts=(0, 2), jobs=1)
        parallel = sweeps.unreachable_sweep(dead_counts=(0, 2), jobs=4)
        assert serial == parallel


class TestCli:
    def test_cli_rejects_bad_jobs(self, capsys):
        assert cli_main(["--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cli_jobs_output_identical(self, capsys):
        assert cli_main(["--target", "rt16"]) == 0
        serial_out = capsys.readouterr().out
        assert cli_main(["--target", "rt16", "--jobs", "4",
                         "--cache-stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "cache:" in captured.err
