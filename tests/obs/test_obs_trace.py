"""Tracing core: sampling, parentage, context propagation, buffering."""

import threading

import pytest

from repro.obs.trace import (NOOP_SPAN, Span, SpanContext, Tracer, attach,
                             current_context, tracer_from_env)


@pytest.fixture
def tracer():
    return Tracer(sample_ratio=1.0, process="test")


class TestSampling:
    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer(sample_ratio=0.0)
        sp = tracer.span("anything")
        assert sp is NOOP_SPAN
        assert not sp.recording
        # The singleton is inert under the full protocol.
        with sp:
            sp.set(key="value")
        sp.end()
        assert tracer.spans() == []

    def test_enabled_tracer_records_roots(self, tracer):
        with tracer.span("root") as sp:
            assert sp.recording
        spans = tracer.drain()
        assert [s["name"] for s in spans] == ["root"]
        assert spans[0]["parent_id"] is None
        assert spans[0]["proc"] == "test"

    def test_child_of_recording_parent_always_records(self):
        # Worker-side tracers run at ratio 0; chunks arriving with a
        # context must still record — parent-based sampling.
        tracer = Tracer(sample_ratio=0.0)
        remote = SpanContext("aa" * 8, "bb" * 8)
        sp = tracer.span("worker.chunk", parent=remote)
        assert sp.recording
        assert sp.trace_id == "aa" * 8
        assert sp.parent_id == "bb" * 8

    def test_ratio_from_env(self):
        assert tracer_from_env({"REPRO_TRACE": ""}).sample_ratio == 0.0
        assert tracer_from_env({"REPRO_TRACE": "1"}).sample_ratio == 1.0
        assert tracer_from_env({"REPRO_TRACE": "0.25"}).sample_ratio \
            == 0.25
        assert tracer_from_env({"REPRO_TRACE": "on"}).sample_ratio == 1.0
        assert tracer_from_env({"REPRO_TRACE": "junk"}).sample_ratio \
            == 0.0


class TestParentage:
    def test_nested_spans_parent_ambiently(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        outer_dict = [s for s in tracer.drain() if s["name"] == "outer"]
        assert len(outer_dict) == 1

    def test_explicit_parent_beats_ambient(self, tracer):
        remote = SpanContext("cc" * 8, "dd" * 8)
        with tracer.span("ambient"):
            sp = tracer.span("explicit", parent=remote)
            assert sp.trace_id == "cc" * 8
        sp.end()

    def test_span_ids_are_unique(self, tracer):
        with tracer.span("a"):
            for _ in range(50):
                tracer.span("b").end()
        ids = [s["span_id"] for s in tracer.drain()]
        assert len(ids) == len(set(ids))

    def test_end_is_idempotent(self, tracer):
        sp = tracer.span("once")
        sp.end()
        sp.end()
        assert len(tracer.drain()) == 1


class TestContextBridging:
    def test_threads_do_not_inherit_but_attach_bridges(self, tracer):
        seen = {}

        def worker(ctx):
            seen["bare"] = current_context()
            with attach(ctx):
                seen["attached"] = current_context()

        with tracer.span("root") as root:
            thread = threading.Thread(target=worker, args=(root.ctx,))
            thread.start()
            thread.join()
        assert seen["bare"] is None
        assert seen["attached"] == SpanContext(root.trace_id,
                                               root.span_id)

    def test_attach_none_is_a_noop(self):
        with attach(None) as ctx:
            assert ctx is None
        assert current_context() is None


class TestWireContext:
    def test_round_trip(self):
        ctx = SpanContext("ab" * 8, "cd" * 8)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize("garbage", [
        None, "string", 42, [], {}, {"trace_id": "x"},
        {"trace_id": 1, "parent_id": 2},
        {"trace_id": "", "parent_id": ""},
    ])
    def test_garbage_is_rejected_quietly(self, garbage):
        assert SpanContext.from_wire(garbage) is None


class TestBuffer:
    def test_drain_by_trace_id(self, tracer):
        with tracer.span("keep") as keep:
            pass
        with tracer.span("other"):
            pass
        drained = tracer.drain(keep.trace_id)
        assert [s["name"] for s in drained] == ["keep"]
        assert [s["name"] for s in tracer.spans()] == ["other"]

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(sample_ratio=1.0, max_spans=3)
        for _ in range(5):
            tracer.span("s").end()
        assert len(tracer.spans()) == 3
        assert tracer.dropped == 2

    def test_ingest_adopts_foreign_spans(self, tracer):
        other = Tracer(sample_ratio=1.0, process="worker")
        other.span("worker.chunk").end()
        shipped = other.drain()
        assert tracer.ingest(shipped) == 1
        assert tracer.ingest([None, "junk"]) == 0
        assert [s["proc"] for s in tracer.spans()] == ["worker"]

    def test_attrs_are_json_safe(self, tracer):
        sp = tracer.span("attrs")
        sp.set(number=3, text="x", flag=True, obj=object())
        sp.end()
        attrs = tracer.drain()[0]["attrs"]
        assert attrs["number"] == 3
        assert attrs["flag"] is True
        assert isinstance(attrs["obj"], str)


class TestSpanDict:
    def test_schema(self, tracer):
        with tracer.span("s") as sp:
            sp.set(key="v")
        rendered = tracer.drain()[0]
        assert set(rendered) == {"name", "trace_id", "span_id",
                                 "parent_id", "ts", "dur", "pid", "tid",
                                 "proc", "attrs"}
        assert rendered["dur"] >= 0.0
        assert isinstance(rendered["pid"], int)

    def test_recording_flag_survives_end(self, tracer):
        # Request handlers check `sp.recording` after ending the span
        # to decide whether to drain — it is a class-level constant.
        sp = tracer.span("s")
        sp.end()
        assert sp.recording
        assert isinstance(sp, Span)
