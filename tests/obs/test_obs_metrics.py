"""Metrics registry: counters, gauges, histograms, snapshots."""

import threading

import pytest

from repro.obs.metrics import (DEFAULT_BOUNDS, Counter, Gauge, Histogram,
                               MetricsRegistry)


class TestCounter:
    def test_labeled_series_accumulate(self):
        counter = Counter("requests_total")
        counter.inc(op="compile")
        counter.inc(2, op="compile")
        counter.inc(op="ping")
        assert counter.value(op="compile") == 3
        assert counter.value(op="ping") == 1
        assert counter.value(op="absent") == 0
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_unlabeled_series(self):
        counter = Counter("c")
        counter.inc(5)
        assert counter.value() == 5
        assert counter.series() == {"": 5}


class TestGauge:
    def test_add_returns_new_value_and_max_with_is_sticky(self):
        depth = Gauge("depth")
        high = Gauge("high_water")
        assert depth.add(3) == 3
        high.max_with(3)
        assert depth.add(-2) == 1
        high.max_with(1)
        assert depth.value() == 1
        assert high.value() == 3

    def test_set(self):
        gauge = Gauge("g")
        gauge.set(7.5)
        assert gauge.value() == 7.5


class TestHistogram:
    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(0.5) is None
        assert Histogram("h", exact=True).percentile(0.5) is None

    def test_exact_mode_nearest_rank(self):
        hist = Histogram("h", exact=True)
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.record(value)
        assert hist.percentile(0.50) == 2.0
        assert hist.percentile(0.99) == 4.0
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(10.0)
        assert hist.mean() == pytest.approx(2.5)

    def test_bucketed_percentile_brackets_the_value(self):
        hist = Histogram("h")
        for _ in range(100):
            hist.record(0.010)
        p50 = hist.percentile(0.50)
        # Bucketed answer: the covering bucket's upper bound.
        assert 0.010 <= p50 <= 0.010 * 1.35

    def test_labeled_series(self):
        hist = Histogram("h", exact=True)
        hist.record(0.001, op="ping")
        hist.record(1.0, op="compile")
        assert hist.count(op="ping") == 1
        assert hist.percentile(0.5, op="compile") == 1.0
        labelsets = hist.labelsets()
        assert {"op": "ping"} in labelsets
        assert {"op": "compile"} in labelsets

    def test_default_bounds_are_a_ladder(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(0.00005)
        assert DEFAULT_BOUNDS[-1] == float("inf")
        for lo, hi in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:-1]):
            assert hi == pytest.approx(lo * 1.35)

    def test_thread_safety_of_totals(self):
        hist = Histogram("h")

        def pound():
            for _ in range(1000):
                hist.record(0.001)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count() == 4000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", "help")
        b = registry.counter("hits")
        assert a is b

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(2, op="go")
        registry.gauge("g").set(1.5)
        registry.histogram("h", exact=True).record(0.5)
        snap = registry.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"] == {"op=go": 2}
        assert snap["g"]["kind"] == "gauge"
        assert snap["h"]["kind"] == "histogram"
        series = snap["h"]["series"][""]
        assert series["count"] == 1
        assert series["p50"] == 0.5

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == []
