"""Exporters: Chrome trace JSON (Perfetto form) + human stage tree."""

import json

import pytest

from repro.obs.export import (SchemaMismatch, chrome_trace,
                              load_chrome_trace, stage_tree,
                              write_chrome_trace)
from repro.obs.trace import Tracer
from repro.service.metrics import METRICS_SCHEMA_VERSION


@pytest.fixture
def spans():
    tracer = Tracer(sample_ratio=1.0, process="test-proc")
    with tracer.span("root") as root:
        root.set(machine="M1")
        with tracer.span("child-a"):
            with tracer.span("grandchild"):
                pass
        with tracer.span("child-b"):
            pass
    return tracer.drain()


class TestChromeTrace:
    def test_document_shape(self, spans):
        doc = chrome_trace(spans, metadata={"mode": "test"})
        assert doc["displayTimeUnit"] == "ms"
        other = doc["otherData"]
        assert other["generator"] == "repro.obs"
        assert other["metrics_schema"] == METRICS_SCHEMA_VERSION
        assert other["span_count"] == len(spans)
        assert other["mode"] == "test"

    def test_one_complete_event_per_span(self, spans):
        doc = chrome_trace(spans)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)
        assert {e["name"] for e in events} == \
            {"root", "child-a", "child-b", "grandchild"}
        for event in events:
            assert event["args"]["trace_id"]
            assert event["args"]["span_id"]
            assert event["ts"] >= 0.0       # normalised to min-ts = 0
            assert event["dur"] >= 0.0

    def test_process_metadata_lane(self, spans):
        doc = chrome_trace(spans)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1               # one pid in this test
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "test-proc"

    def test_attrs_become_args(self, spans):
        doc = chrome_trace(spans)
        root = next(e for e in doc["traceEvents"]
                    if e.get("name") == "root")
        assert root["args"]["machine"] == "M1"

    def test_json_round_trip(self, spans, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), spans)
        assert count == len(spans) + 1      # + process metadata lane
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document == load_chrome_trace(str(path))

    def test_schema_mismatch_fails_loudly(self, spans, tmp_path):
        path = tmp_path / "stale.json"
        write_chrome_trace(str(path), spans)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["otherData"]["metrics_schema"] = \
            METRICS_SCHEMA_VERSION + 10
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(SchemaMismatch):
            load_chrome_trace(str(path))


class TestStageTree:
    def test_tree_nests_and_shows_shares(self, spans):
        text = stage_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert any(line.startswith("  child-a") for line in lines)
        assert any(line.startswith("    grandchild") for line in lines)
        assert "ms" in lines[0]
        assert "[test-proc]" in lines[0]
        assert "%" in lines[1]              # child share of parent

    def test_orphans_are_rooted(self):
        tracer = Tracer(sample_ratio=1.0)
        sp = tracer.span("lonely")
        sp.parent_id = "ff" * 8             # parent never recorded
        sp.end()
        text = stage_tree(tracer.drain())
        assert text.startswith("lonely")

    def test_empty(self):
        assert stage_tree([]) == "(no spans)"
