"""Benchmark + checks for Table 2 (the alternatives classification).

The matrix itself is qualitative; the bench regenerates it along with the
executable evidence backing the derivable cells, and times the evidence
computation (which exercises the full system: engine-cached optimizer
and compile batches, all three generators, compiler dumps,
semantics-dependent pass gating).  Each timed call builds a fresh
engine, so the timing is a cold-cache measurement.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.table2 import (CRITERIA, PAPER_TABLE2, main,
                                      run_table2)


@pytest.fixture(scope="module")
def table2_rows():
    rows = run_table2()
    print("\n" + main())
    return rows


def test_table2_matches_paper_matrix(table2_rows):
    for row in table2_rows:
        assert row.values == PAPER_TABLE2[row.alternative]


def test_table2_before_codegen_dominates(table2_rows):
    """'Before code generation' is the only alternative independent from
    the implementation and not affecting model debugging."""
    by_name = {r.alternative: r for r in table2_rows}
    before = by_name["before code generation"]
    assert before.values["independent from implementation"] == "YES"
    assert before.values["affects model debug"] == "NO"
    for other in ("after code generation", "during code generation"):
        assert by_name[other].values[
            "independent from implementation"] == "NO"


def test_table2_evidence_is_executable(table2_rows):
    before = next(r for r in table2_rows
                  if r.alternative == "before code generation")
    assert set(before.evidence) == {"independent from implementation",
                                    "easy to detect",
                                    "independent from semantics"}
    assert "kept=True" in before.evidence["easy to detect"]


def test_table2_benchmark(benchmark):
    benchmark(lambda: run_table2(with_evidence=True,
                                 engine=ExperimentEngine()))
