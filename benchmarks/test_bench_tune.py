"""Autotuner benchmarks: cold search vs warm record replay.

The tuner's performance claim is a ladder: a cold search measures the
whole lattice once; a warm engine answers the same query from the
in-memory record for microseconds; a fresh engine over a persisted
store replays the record from disk without recomputing a single cell.
``scripts/check_bench.py`` guards the ladder's shape.

The lattice here is deliberately small (one pattern, one level — the
pass subsets still fan out) so the cold rung times the search
machinery, not ten seconds of VM simulation.
"""

import pytest

from repro.compiler import OptLevel
from repro.engine import ExperimentEngine
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite

LATTICE = dict(patterns=["state-table"], levels=(OptLevel.OS,))


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


def test_bench_tune_cold_search(benchmark, machine):
    result = benchmark(
        lambda: ExperimentEngine().tune(machine, **LATTICE))
    assert result.winner is not None


def test_bench_tune_warm_record_hit(benchmark, machine):
    # 100 hits per round: a record hit is a fingerprint + dict lookup,
    # too close to timer resolution to compare one at a time.
    engine = ExperimentEngine()
    engine.tune(machine, **LATTICE)

    def hundred_hits():
        for _ in range(100):
            record = engine.tune(machine, **LATTICE)
        return record

    record = benchmark(hundred_hits)
    assert record.winner is not None
    assert engine.stats.hits >= 100


def test_bench_tune_disk_record_replay(benchmark, machine, tmp_path):
    # A fresh engine per round: the only warmth is the store on disk,
    # so each round is one disk-served record replay, zero cells
    # measured.
    ExperimentEngine(cache_dir=str(tmp_path)).tune(machine, **LATTICE)

    def replay():
        warm = ExperimentEngine(cache_dir=str(tmp_path))
        record = warm.tune(machine, **LATTICE)
        assert warm.stats.misses == 0
        return record

    record = benchmark(replay)
    assert record.winner is not None
