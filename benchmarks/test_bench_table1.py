"""Benchmark + shape checks for Table 1 (three patterns).

Regenerates the paper's Table 1 and asserts its qualitative content:

* every pattern gains significantly on the hierarchical machine;
* the STT pattern has the smallest gain (its per-transition cost is
  table data; the fixed engine survives);
* the State Pattern has the largest gain (whole state classes, vtables
  and singletons disappear).
"""

import pytest

from repro.codegen import ALL_GENERATORS
from repro.engine import ExperimentEngine
from repro.experiments.table1 import PAPER_TABLE1, main, run_table1
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.pipeline import optimize_and_compare


@pytest.fixture(scope="module")
def table1_rows():
    # One shared engine: main() rides the cache run_table1() warmed.
    engine = ExperimentEngine()
    rows = run_table1(engine=engine)
    print("\n" + main(engine=engine))
    return {r.pattern: r for r in rows}


def test_table1_warm_cache_benchmark(benchmark):
    """Regenerating Table 1 on a warmed engine must be almost free."""
    engine = ExperimentEngine()
    cold = run_table1(engine=engine)
    warm = benchmark(lambda: run_table1(engine=engine))
    assert warm == cold


def test_table1_all_patterns_gain_significantly(table1_rows):
    for row in table1_rows.values():
        assert row.gain_percent > 20.0, row
        assert row.behavior_preserved, row


def test_table1_gain_ordering_matches_paper(table1_rows):
    """Paper: STT 30.81 % < Nested Switch 45.90 % < State Pattern 52.54 %."""
    stt = table1_rows["state-table"].gain_percent
    ns = table1_rows["nested-switch"].gain_percent
    sp = table1_rows["state-pattern"].gain_percent
    assert stt < ns <= sp * 1.05  # NS and SP are close in the paper too


def test_table1_state_pattern_is_largest_before_optimization(table1_rows):
    """Paper: the State Pattern produces the biggest non-optimized code
    (49 863 B, just above Nested Switch)."""
    sp = table1_rows["state-pattern"].size_before
    assert sp == max(r.size_before for r in table1_rows.values())


@pytest.mark.parametrize("gen_cls", ALL_GENERATORS,
                         ids=[g.name for g in ALL_GENERATORS])
def test_table1_pipeline_benchmark(benchmark, gen_cls):
    machine = hierarchical_machine_with_shadowed_composite()
    benchmark(lambda: optimize_and_compare(machine, gen_cls.name,
                                           check_behavior=False))
