"""Benchmarks + shape checks for the §III.C scaling claims and ablations.

* gain grows with the number of removed states ("this gain is
  proportional to the number of removed states/transitions");
* gain grows with the shadowed composite's payload ("It depends also on
  the kind of state machine");
* the model-pass ablation shows the structural passes (shadowed
  transitions + unreachable states) carry the hierarchical gain;
* the compiler's own ``-Os`` is its best size level, yet far below what
  the model level adds.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.sweeps import (composite_sweep, main, opt_level_sweep,
                                      pass_ablation, pattern_scaling_sweep,
                                      unreachable_sweep)


@pytest.fixture(scope="module")
def sweep_report():
    text = main()
    print("\n" + text)
    return text


def test_bench_sweeps_parallel_main(benchmark):
    """Full sweep suite on a 4-worker engine; output must match serial."""
    serial = main(engine=ExperimentEngine(jobs=1))
    parallel = benchmark.pedantic(
        lambda: main(engine=ExperimentEngine(jobs=4)),
        rounds=5, iterations=1)
    assert parallel == serial


def test_gain_vs_removed_states(benchmark, sweep_report):
    points = benchmark.pedantic(unreachable_sweep, rounds=5, iterations=1)
    gains = [p.gain_percent for p in points]
    # Monotone non-decreasing gain with more dead states; zero when clean.
    assert gains[0] == 0.0
    assert all(a <= b + 1e-9 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 20.0
    # Per the paper: the optimized size is independent of the dead count.
    assert len({p.size_after for p in points}) == 1


def test_gain_vs_composite_width(benchmark, sweep_report):
    points = benchmark.pedantic(composite_sweep, rounds=5, iterations=1)
    gains = [p.gain_percent for p in points]
    assert all(a <= b + 1e-9 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 40.0


def test_pattern_scaling(benchmark, sweep_report):
    curves = benchmark.pedantic(pattern_scaling_sweep, rounds=5,
                                iterations=1, kwargs={"sizes": (4, 12, 20)})
    # Every pattern grows with machine size.
    for name, points in curves.items():
        sizes = [p.size_after for p in points]
        assert sizes == sorted(sizes), name
    # The table pattern's *incremental* cost per state is the lowest of
    # the code-duplicating patterns at scale (data rows vs switch arms).
    def slope(points):
        return (points[-1].size_after - points[0].size_after) / \
            (points[-1].x - points[0].x)
    assert slope(curves["state-table"]) < slope(curves["state-pattern"])


def test_pass_ablation_structural_passes_carry_the_gain(sweep_report):
    points = pass_ablation()
    by_label = {p.label: p for p in points}
    final_gain = points[-1].gain_percent
    after_structural = by_label["+remove-unreachable-states"].gain_percent
    assert after_structural >= 0.95 * final_gain


def test_opt_level_sweep_os_is_best_compiler_only_level(sweep_report):
    points = opt_level_sweep()
    by_label = {p.label: p for p in points}
    sizes = {label: p.size_after for label, p in by_label.items()}
    assert sizes["-Os"] <= min(sizes.values())
    # The compiler alone cannot reach the model-optimized size.
    from repro.experiments.models import \
        hierarchical_machine_with_shadowed_composite
    from repro.pipeline import optimize_and_compare
    cmp = optimize_and_compare(hierarchical_machine_with_shadowed_composite(),
                               "nested-switch", check_behavior=False)
    assert cmp.size_after < sizes["-Os"]
