"""Delta-compile benchmarks: cold vs warm-module vs delta recompile.

Three rungs of the compile-cost ladder for one edit-recompile cycle:

* **cold** — monolithic compile of a machine from nothing;
* **warm** — the same machine again through an engine (whole-module
  fingerprint hit: no compile at all, the upper bound on reuse);
* **delta** — a *mutated* machine (one transition edited) against a
  warm unit cache: only the units the edit reaches recompile, then a
  relink.

Delta must sit strictly between warm and cold, and
``scripts/check_bench.py`` pins all three against the committed
baseline.  The state-pattern generator is used because its one
function per (state, event) handler gives the unit DAG its finest
granularity — the configuration the delta-compile contract gates in
CI (``scripts/check_delta_compile.py``).
"""

import pytest

from repro.compiler import OptLevel, compile_program_incremental
from repro.compiler.frontend.lower import lower_unit
from repro.codegen import generator_by_name
from repro.engine import ExperimentEngine
from repro.engine.cache import CompileCache
from repro.experiments.workload import (WorkloadSpec, generate_machine,
                                        mutate_one_transition)
from repro.pipeline import compile_machine

PATTERN = "state-pattern"
SPEC = WorkloadSpec(n_live=20, events_per_state=3, seed=3)


@pytest.fixture(scope="module")
def machine():
    return generate_machine(SPEC)


@pytest.fixture(scope="module")
def mutant(machine):
    return mutate_one_transition(machine)


def test_bench_delta_cold_compile(benchmark, machine):
    result = benchmark(
        lambda: compile_machine(machine, pattern=PATTERN))
    assert result.total_size > 0


def test_bench_delta_warm_module_hit(benchmark, machine):
    engine = ExperimentEngine()
    engine.compile_machine(machine, pattern=PATTERN)

    def hundred_hits():
        for _ in range(100):
            result = engine.compile_machine(machine, pattern=PATTERN)
        return result

    result = benchmark(hundred_hits)
    assert result.total_size > 0


def test_bench_delta_recompile_after_edit(benchmark, machine, mutant):
    cache = CompileCache()
    generator = generator_by_name(PATTERN)
    compile_program_incremental(lower_unit(generator.generate(machine)),
                                OptLevel.OS, unit_cache=cache,
                                extra_key=PATTERN)

    def delta_recompile():
        program = lower_unit(generator.generate(mutant))
        return compile_program_incremental(program, OptLevel.OS,
                                           unit_cache=cache,
                                           extra_key=PATTERN)

    result = benchmark(delta_recompile)
    assert result.total_size > 0


def test_bench_delta_relink_only(benchmark, machine):
    """The floor under delta: every unit hits, only split + link run."""
    cache = CompileCache()
    generator = generator_by_name(PATTERN)
    compile_program_incremental(lower_unit(generator.generate(machine)),
                                OptLevel.OS, unit_cache=cache,
                                extra_key=PATTERN)

    def relink():
        program = lower_unit(generator.generate(machine))
        return compile_program_incremental(program, OptLevel.OS,
                                           unit_cache=cache,
                                           extra_key=PATTERN)

    result = benchmark(relink)
    assert result.total_size > 0
