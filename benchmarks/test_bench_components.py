"""Component-level throughput benchmarks.

Not a paper table — these measure the substrates themselves so
performance regressions in the reproduction are visible: interpreter
run-to-completion rate, model optimizer, each generator, and MGCC's
middle end + backend.
"""

import pytest

from repro.codegen import (NestedSwitchGenerator, StatePatternGenerator,
                           StateTableGenerator)
from repro.compiler import OptLevel, compile_unit
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.experiments.workload import WorkloadSpec, generate_machine
from repro.optim import optimize
from repro.semantics import run_scenario


@pytest.fixture(scope="module")
def big_machine():
    return generate_machine(WorkloadSpec(n_live=16, n_dead=4,
                                         n_shadowed_composites=1))


def test_bench_interpreter(benchmark, big_machine):
    events = [f"ev{i % 20 + 1}" for i in range(100)]
    benchmark(lambda: run_scenario(big_machine, events))


def test_bench_model_optimizer(benchmark, big_machine):
    benchmark(lambda: optimize(big_machine))


@pytest.mark.parametrize("gen_cls", [StateTableGenerator,
                                     NestedSwitchGenerator,
                                     StatePatternGenerator],
                         ids=lambda g: g.name)
def test_bench_generator(benchmark, big_machine, gen_cls):
    benchmark(lambda: gen_cls().generate(big_machine))


@pytest.mark.parametrize("level", [OptLevel.O0, OptLevel.OS],
                         ids=lambda l: l.value)
def test_bench_compiler(benchmark, big_machine, level):
    unit = NestedSwitchGenerator().generate(big_machine)
    benchmark(lambda: compile_unit(unit, level))
