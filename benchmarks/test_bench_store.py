"""Store benchmarks: artifact round-trips and warm-from-disk compiles.

These pin the persistence layer's performance claims for
``scripts/check_bench.py``:

* a store round-trip (encode + atomic publish + verified read) must
  stay cheap relative to a compile;
* a *warm-from-disk* compile — fresh process in real life, modeled
  here as a fresh cache over a populated store — must stay far cheaper
  than the cold compile it replaces (that gap is the whole point of
  ``--cache-dir``).
"""

import pytest

from repro.engine import CompileCache, DiskBackend, ExperimentEngine
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture(scope="module")
def compiled(machine):
    return ExperimentEngine().compile_machine(machine)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "bench-store")


def test_bench_store_roundtrip(benchmark, store, compiled):
    # One full artifact cycle: pickle + hash + O_EXCL publish, then a
    # verified (re-hashed) read of a real CompileResult.
    def roundtrip():
        store.put("bench-key", compiled)
        return store.load("bench-key")

    result = benchmark(roundtrip)
    assert result.total_size == compiled.total_size


def test_bench_store_verified_reads(benchmark, store, compiled):
    # 10 reads per round: loads dominate the warm path, so their
    # verification cost (hash over the payload) is what to watch.
    store.put("bench-key", compiled)

    def ten_reads():
        for _ in range(10):
            value = store.load("bench-key")
        return value

    result = benchmark(ten_reads)
    assert result.total_size == compiled.total_size


def test_bench_warm_from_disk_compile(benchmark, tmp_path, machine):
    # A fresh CompileCache per round models a new process arriving at a
    # populated --cache-dir: fingerprint + disk read, no compilation.
    store = ArtifactStore(tmp_path / "warm-store")
    seed_engine = ExperimentEngine(cache=CompileCache(DiskBackend(store)))
    seed_engine.compile_machine(machine)
    # The store holds the whole-module artifact plus one artifact per
    # compilation unit (the delta tier shares the module cache's
    # backend); the warm path below reads only the module entry.
    assert len(store) == 1 + seed_engine.unit_stats.misses

    def warm_process_compile():
        engine = ExperimentEngine(cache=CompileCache(DiskBackend(store)))
        result = engine.compile_machine(machine)
        assert engine.stats.disk_hits == 1
        return result

    result = benchmark(warm_process_compile)
    assert result.total_size > 0
