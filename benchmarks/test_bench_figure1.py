"""Benchmark + shape checks for Figure 1 (both rows).

Regenerates the paper's Figure 1 size comparison and times the full
pipeline (model optimization -> code generation -> -Os compilation)
through the experiment engine — each timed call uses a fresh
(cold-cache) engine so the numbers stay honest compile timings.
Run with ``pytest benchmarks/ --benchmark-only``; the reproduced rows are
printed so the output can be compared to the paper side by side.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.figure1 import (PAPER_FLAT_GAIN,
                                       PAPER_HIER_GAIN_MIN, main,
                                       run_figure1)
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.pipeline import optimize_and_compare


@pytest.fixture(scope="module")
def figure1_rows():
    rows = run_figure1()
    print("\n" + main())
    return {("flat" if "flat" in r.example else "hier"): r for r in rows}


def test_figure1_flat(benchmark, figure1_rows):
    """Flat example: modest gain, same ballpark as the paper's 10.07 %."""
    row = figure1_rows["flat"]
    assert row.size_after < row.size_before
    # Shape: a modest single-digit-to-low-tens gain.
    assert 2.0 <= row.gain_percent <= 30.0
    assert row.dce_kept_dead_code      # the compiler alone cannot do it
    assert row.behavior_preserved
    benchmark(lambda: optimize_and_compare(
        flat_machine_with_unreachable_state(), "nested-switch",
        check_behavior=False, engine=ExperimentEngine()))


def test_figure1_hierarchical(benchmark, figure1_rows):
    """Hierarchical example: the paper reports > 45 % gain."""
    row = figure1_rows["hier"]
    assert row.gain_percent > PAPER_HIER_GAIN_MIN
    assert row.dce_kept_dead_code
    assert row.behavior_preserved
    benchmark(lambda: optimize_and_compare(
        hierarchical_machine_with_shadowed_composite(), "nested-switch",
        check_behavior=False, engine=ExperimentEngine()))


def test_figure1_hierarchical_dwarfs_flat(figure1_rows):
    """The hierarchical gain is several times the flat gain."""
    assert figure1_rows["hier"].gain_percent > \
        2 * figure1_rows["flat"].gain_percent
