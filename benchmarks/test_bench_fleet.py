"""Fleet benchmarks: table compile, vectorized dispatch, harness runs.

These pin the fleet engine's hot paths for ``scripts/check_bench.py``:

* **compile_table** — flattening the machine into dispatch arrays;
* **dispatch_10k** — one broadcast batch advancing 10^4 lanes;
* **harness_run** — a full sharded stream through ``FleetHarness``;
* **speedup** — the acceptance gate: at N=10^4 the vectorized engine
  must sustain >= 10x the per-instance interpreter's lane-event rate
  on the same machine and stream (measured here on a small interpreter
  sample and the full fleet, wall-clock but with a wide margin — the
  observed ratio is in the hundreds).
"""

import time

import pytest

from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.fleet import Fleet, FleetHarness, compile_table
from repro.semantics.runtime import MachineInstance

EVENTS = ["e1", "e2", "e5", "e3", "e9"] * 4


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture(scope="module")
def table(machine):
    return compile_table(machine)


def test_bench_fleet_compile_table(benchmark, machine):
    table = benchmark(lambda: compile_table(machine))
    assert table.n_configs > 1


def test_bench_fleet_dispatch_10k(benchmark, table):
    def run():
        fleet = Fleet(table, 10_000).start()
        for event in EVENTS:
            fleet.dispatch_all(event)
        return fleet

    fleet = benchmark(run)
    assert fleet.stats.lane_events == 10_000 * len(EVENTS)


def test_bench_fleet_harness_run(benchmark, table):
    def run():
        harness = FleetHarness(table, n_instances=4096, n_shards=4,
                               batch_size=32, routing="broadcast")
        harness.start()
        return harness.run(EVENTS)

    report = benchmark(run)
    assert report.lane_events == 4096 * len(EVENTS)


def test_fleet_speedup_over_interpreter(machine, table):
    """Acceptance gate (not a timing pin): >= 10x per-lane-event rate
    over per-instance interpretation at N=10^4."""
    n_lanes, sample = 10_000, 20

    began = time.perf_counter()
    fleet = Fleet(table, n_lanes).start()
    for event in EVENTS:
        fleet.dispatch_all(event)
    fleet_rate = (n_lanes * len(EVENTS)) / (time.perf_counter() - began)

    began = time.perf_counter()
    for _ in range(sample):
        instance = MachineInstance(machine)
        instance.start()
        for event in EVENTS:
            instance.dispatch(event)
    interp_rate = (sample * len(EVENTS)) / (time.perf_counter() - began)

    assert interp_rate > 0
    speedup = fleet_rate / interp_rate
    assert speedup >= 10.0, (
        f"fleet {fleet_rate:,.0f} lane-events/s vs interpreter "
        f"{interp_rate:,.0f}: speedup {speedup:.1f}x < 10x floor")
