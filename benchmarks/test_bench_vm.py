"""VM benchmarks: assemble, boot, dispatch, and conformance rounds.

These pin the execution layer's hot paths for ``scripts/check_bench.py``:

* **assemble** — encoding a compiled module into an image (the
  assembler+linker pass, pure data transformation);
* **boot** — starting one simulated instance (memory copy + ``init()``);
* **dispatch** — the per-event simulation cost, the loop dynamic
  metrics are built from;
* **conformance** — one small interpreter-vs-simulator differential
  run, the unit of the conformance grid.

The *simulated cycle counts* these paths produce are deterministic; the
benchmarks measure the *host* cost of producing them.
"""

import pytest

from repro.compiler import OptLevel
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.vm import CompiledProgram, assemble, check_vm_conformance
from repro.vm.harness import CompiledMachineVM


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


@pytest.fixture(scope="module")
def program(machine):
    return CompiledProgram(machine, "nested-switch", level=OptLevel.OS,
                           target="rt32")


def test_bench_vm_assemble(benchmark, program):
    image = benchmark(lambda: assemble(program.compile_result.module))
    assert len(image.text) == program.compile_result.module.text_size


def test_bench_vm_boot(benchmark, program):
    vm = benchmark(program.boot)
    assert vm.vm.cycles > 0


def test_bench_vm_dispatch(benchmark, program):
    events = ["e1", "e3", "e1", "e3"] * 5

    def run() -> CompiledMachineVM:
        return program.boot().send_all(events)

    vm = benchmark(run)
    assert vm.metrics.events_dispatched == len(events)
    assert vm.metrics.cycles_per_event > 0


def test_bench_vm_conformance(benchmark, machine):
    scenarios = [(), ("e1",), ("e1", "e2"), ("e1", "e3", "e1")]
    report = benchmark(
        lambda: check_vm_conformance(machine, pattern="nested-switch",
                                     level=OptLevel.OS, target="rt32",
                                     scenarios=scenarios))
    assert report.conformant
    assert report.scenarios_run == len(scenarios)
