"""Engine benchmarks: cold compile, warm cache hit, deduped batches.

These pin the engine's two performance claims so regressions are caught
by ``scripts/check_bench.py``:

* a warm cache hit must stay orders of magnitude cheaper than a cold
  compile (it is a fingerprint + dict lookup);
* a batch with repeated jobs must cost about one unique-set, not one
  per job.
"""

import pytest

from repro.codegen import ALL_PATTERNS
from repro.engine import CompileJob, ExperimentEngine
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite


@pytest.fixture(scope="module")
def machine():
    return hierarchical_machine_with_shadowed_composite()


def test_bench_engine_cold_compile(benchmark, machine):
    result = benchmark(
        lambda: ExperimentEngine().compile_machine(machine))
    assert result.total_size > 0


def test_bench_engine_warm_hit(benchmark, machine):
    # 100 hits per round: a single hit is microseconds, too close to
    # timer resolution for the regression guard to compare reliably.
    engine = ExperimentEngine()
    engine.compile_machine(machine)

    def hundred_hits():
        for _ in range(100):
            result = engine.compile_machine(machine)
        return result

    result = benchmark(hundred_hits)
    assert result.total_size > 0
    assert engine.stats.hits >= 100


def test_bench_engine_batch_dedup(benchmark, machine):
    # Every pattern twice: the planner must schedule each compile once.
    jobs = [CompileJob(machine, gen_cls.name)
            for gen_cls in ALL_PATTERNS] * 2

    def run():
        engine = ExperimentEngine()
        results = engine.run_batch(jobs)
        assert engine.stats.misses == len(ALL_PATTERNS)
        return results

    results = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(results) == len(jobs)


def test_warm_hit_is_much_cheaper_than_cold(machine):
    """Shape check (not a timing benchmark): a hit does no compilation."""
    engine = ExperimentEngine()
    cold = engine.compile_machine(machine)
    warm = engine.compile_machine(machine)
    assert warm is cold
    assert engine.stats.misses == 1 and engine.stats.hits == 1
