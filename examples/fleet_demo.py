#!/usr/bin/env python3
"""One machine, three executors — then a 100,000-instance fleet.

The Executor protocol (`repro.exec`) makes "run this machine over
these events" one call that works identically across the reference
interpreter, the compiled-code simulator, and the vectorized fleet
engine.  This demo:

* runs the same scenario on all three backends and shows they agree
  observably;
* instantiates a 100k-instance fleet of the paper's hierarchical
  machine, broadcasts an event stream through the sharded harness, and
  prints sustained events/sec with per-shard latency percentiles.

Run: ``python examples/fleet_demo.py``
"""

import random

from repro.exec import (FleetExecutor, InterpreterExecutor, VMExecutor,
                        run_scenario)
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.fleet import FleetHarness, compile_table


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    machine = hierarchical_machine_with_shadowed_composite()
    events = ["e1", "e2", "e5", "e3"]

    section("1. one scenario, three executors, one protocol")
    runs = {}
    for executor in (InterpreterExecutor(), VMExecutor(), FleetExecutor()):
        instance = run_scenario(executor, machine, events)
        runs[executor.name] = instance
        print(f"{executor.describe():40s} "
              f"{len(instance.trace.observable())} observable records, "
              f"in_final={instance.in_final}")
    reference = runs["interp"]
    for name, instance in runs.items():
        assert (instance.trace.observable_payloads()
                == reference.trace.observable_payloads()), name
    print("observable traces agree across all three backends")

    section("2. a 100,000-instance fleet")
    table = compile_table(machine)
    print(table.describe())
    harness = FleetHarness(table, n_instances=100_000, n_shards=8,
                           batch_size=64, routing="broadcast")
    harness.start()
    rng = random.Random(0)
    alphabet = [e.name for e in machine.signal_alphabet()]
    stream = [rng.choice(alphabet) for _ in range(20)]
    report = harness.run(stream)
    print(report.summary())
    for shard in report.shards:
        print(f"  shard {shard.shard}: {shard.lanes} lanes, "
              f"p50 {shard.p50_ms:.2f} ms  p99 {shard.p99_ms:.2f} ms "
              f"per batch, vectorized {shard.fast_fraction:.0%}")
    assert report.lane_events == 100_000 * len(stream)


if __name__ == "__main__":
    main()
