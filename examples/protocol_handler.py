#!/usr/bin/env python3
"""Frame-protocol receiver — the table pattern and model persistence.

A byte-stream frame receiver (idle / sync / length / payload / crc) of
the kind RTES communication stacks run per interrupt.  Demonstrates:

* guards and context attributes (payload countdown);
* the State-Transition-Table generator: hierarchy-free flattening, the
  rows/actions rodata layout, and the printed C++;
* model serialization: save the machine as JSON ("XMI-lite"), reload it,
  and show the round-trip is exact;
* size behavior of the table pattern: adding dead states costs 24-byte
  rows, and the model optimizer gets them back.

Run: ``python examples/protocol_handler.py``
"""

from repro.codegen import StateTableGenerator, flatten_machine
from repro.compiler import OptLevel, compile_unit
from repro.cpp import print_unit
from repro.pipeline import optimize_and_compare
from repro.uml import (Assign, StateMachineBuilder, calls, dumps_machine,
                       loads_machine, parse_expr)


def build_frame_receiver():
    b = StateMachineBuilder("FrameRx")
    b.attribute("remaining", 0)

    b.state("Idle", entry=calls("rx_enable"))
    b.state("Sync", entry=calls("sync_found"))
    b.state("Length")
    b.state("Payload", entry=calls("buffer_reset"))
    b.state("Crc", entry=calls("crc_begin"))

    b.initial_to("Idle")
    b.transition("Idle", "Sync", on="byte_sof")
    b.transition("Sync", "Length", on="byte", effect=calls("store_length"))
    b.transition("Length", "Payload", on="byte",
                 effect=[Assign("remaining", parse_expr("remaining + 8"))])
    b.transition("Payload", "Payload", on="byte",
                 guard="remaining > 1",
                 effect=[Assign("remaining", parse_expr("remaining - 1"))])
    b.transition("Payload", "Crc", on="byte", guard="remaining <= 1",
                 effect=calls("payload_done"))
    b.transition("Crc", "Idle", on="byte", effect=calls("frame_accept"))
    b.transition("Crc", "Idle", on="byte_bad", effect=calls("frame_reject"))
    b.transition("Idle", "final", on="stop")

    # Two states from an abandoned escape-sequence feature, never wired in:
    b.state("Escape", entry=calls("escape_begin"))
    b.state("EscapeData")
    b.transition("Escape", "EscapeData", on="byte")
    b.transition("EscapeData", "Payload", on="byte")
    return b.build()


def main():
    machine = build_frame_receiver()

    # -- persistence round-trip -------------------------------------------
    text = dumps_machine(machine)
    reloaded = loads_machine(text)
    assert dumps_machine(reloaded) == text
    print(f"serialized model: {len(text)} bytes of JSON; "
          "round-trip exact")
    print()

    # -- the flattened table ------------------------------------------------
    flat = flatten_machine(machine)
    print(f"flattened: {len(flat.leaves)} leaf configurations, "
          f"{len(flat.transitions)} table rows")
    for tr in flat.transitions[:6]:
        print("   row:", tr.description)
    print("   ...")
    print()

    # -- generated C++ (excerpt) -------------------------------------------
    unit = StateTableGenerator().generate(machine)
    text = print_unit(unit)
    rows_start = text.index("const FrameRx_Row")
    print("generated table (C++ excerpt):")
    print(text[rows_start:rows_start + 700])
    print("   ...")
    print()

    # -- sizes ---------------------------------------------------------------
    result = compile_unit(unit, OptLevel.OS)
    print(result.module.size_report())
    cmp = optimize_and_compare(machine, "state-table")
    print(cmp.summary())
    print(f"(the two dead escape states cost "
          f"{cmp.size_before - cmp.size_after} bytes of rows, thunks and "
          "enum plumbing)")


if __name__ == "__main__":
    main()
