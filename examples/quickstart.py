#!/usr/bin/env python3
"""Quickstart: the paper's workflow in ~40 lines.

Build a state machine with a modeling bug (an unreachable state), see
that the compiler cannot remove the dead code, optimize at the model
level instead, and compare generated assembly sizes.

Run: ``python examples/quickstart.py``
"""

from repro.analysis import find_dead_code
from repro.compiler import OptLevel
from repro.pipeline import compile_machine, optimize_and_compare
from repro.uml import StateMachineBuilder, calls


def build_door_controller():
    """A door controller whose 'Maintenance' state was left unconnected
    by the modeler — no transition ever reaches it."""
    b = StateMachineBuilder("Door")
    b.state("Closed", entry=calls("lock_engage"))
    b.state("Open", entry=calls("lock_release", "light_on"),
            exit=calls("light_off"))
    b.state("Maintenance", entry=calls("diagnostics_start"),
            exit=calls("diagnostics_stop"))  # unreachable!
    b.initial_to("Closed")
    b.transition("Closed", "Open", on="open_cmd")
    b.transition("Open", "Closed", on="close_cmd")
    b.transition("Maintenance", "Closed", on="reset")
    b.transition("Closed", "final", on="shutdown")
    return b.build()


def main():
    machine = build_door_controller()

    # 1. The model-level diagnosis (what the compiler will never see):
    print(find_dead_code(machine).summary())
    print()

    # 2. Show that the compiler keeps the dead state's code even at -Os:
    result = compile_machine(machine, "nested-switch", OptLevel.OS,
                             capture_dumps=True)
    kept = "diagnostics_stop" in result.dump_after("dce")
    print(f"compiler -Os, post-DCE dump still contains the dead state's "
          f"code: {kept}")
    print(f"compiler-only size: {result.total_size} bytes")
    print()

    # 3. Model-level optimization + behavioral check + size comparison:
    cmp = optimize_and_compare(machine, "nested-switch")
    print(cmp.model_report.summary())
    print()
    print(cmp.summary())


if __name__ == "__main__":
    main()
