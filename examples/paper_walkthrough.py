#!/usr/bin/env python3
"""The paper, section by section, as executable output.

Walks through the DATE 2010 experiments in order:

* §III.A  build the Figure 1 models (flat + hierarchical);
* §III.B  generate C++ with the Nested Switch pattern;
* §III.C  compile at -Os, inspect the dead-code-elimination dump, then
          optimize the model and recompile — both Figure 1 rows;
* Table 1 regenerate the three-pattern comparison;
* Table 2 regenerate the alternatives classification.

Run: ``python examples/paper_walkthrough.py``
"""

from repro.analysis import measure_model
from repro.codegen import NestedSwitchGenerator
from repro.compiler import OptLevel
from repro.cpp import print_unit
from repro.experiments import figure1, table1, table2
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.pipeline import compile_machine


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    section("III.A - building the state machine diagrams")
    flat = flat_machine_with_unreachable_state()
    m = measure_model(flat)
    print(f"flat model: {m.total_states} states, "
          f"{m.pseudostates + m.final_states} pseudo/final vertices, "
          f"{m.transitions} transitions")
    print("paper: '3 states, 2 pseudo states (initial and final states) "
          "and 5 transitions'")
    hier = hierarchical_machine_with_shadowed_composite()
    mh = measure_model(hier)
    print(f"hierarchical model: {mh.total_states} states of which "
          f"{mh.composite_states} composite, "
          f"{mh.completion_transitions} completion transition(s)")

    section("III.B - generating the C++ code (Nested Switch pattern)")
    unit = NestedSwitchGenerator().generate(flat)
    text = print_unit(unit)
    print(text[:text.index("class ") + 400])
    print("    ...")

    section("III.C - compiling with -Os; what dead code elimination sees")
    result = compile_machine(flat, "nested-switch", OptLevel.OS,
                             capture_dumps=True)
    dump = result.dump_after("dce")
    line = next(l for l in dump.splitlines() if "s2_exit_action" in l)
    print("post-DCE GIMPLE still contains the unreachable state's code:")
    print("   ", line.strip())
    print("paper: 'we have found that code related to the unreachable "
          "state still exists'")

    section("Figure 1 - model optimization impact")
    print(figure1.main())

    section("Table 1 - three implementation patterns")
    print(table1.main())

    section("Table 2 - where should the optimization live?")
    print(table2.main())


if __name__ == "__main__":
    main()
