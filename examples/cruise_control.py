#!/usr/bin/env python3
"""Automotive cruise control — the paper's RTES domain, end to end.

A hierarchical cruise-control state machine with a composite "Engaged"
state (Accelerating / Cruising / Resuming substates), guards over a
context attribute, and entry/exit actions driving actuators.

The example exercises the whole reproduction:

1. model construction + validation + metrics;
2. interactive model debugging (the trace the paper's §IV.B discusses);
3. model-level optimization (the model contains a shadowed diagnostic
   mode that can never activate — a realistic leftover of iterative
   modeling);
4. code generation with all three patterns and size comparison;
5. execution of the *generated, compiled* code on the RT32 substrate,
   checked against the model interpreter step by step.

Run: ``python examples/cruise_control.py``
"""

from repro.analysis import find_dead_code, measure_model
from repro.codegen import ALL_GENERATORS
from repro.codegen.harness import GeneratedMachine
from repro.compiler import OptLevel
from repro.exec import InterpreterExecutor
from repro.pipeline import compile_machine, optimize_and_compare
from repro.uml import Assign, StateMachineBuilder, calls, parse_expr


def build_cruise_control():
    b = StateMachineBuilder("CruiseControl")
    b.attribute("speed", 0)
    b.attribute("target", 0)

    b.state("Off", entry=calls("throttle_release"))
    b.state("Standby", entry=calls("indicator_standby"))

    engaged = b.composite("Engaged", entry=calls("indicator_engaged"),
                          exit=calls("throttle_release"))
    engaged.state("Accelerating", entry=calls("throttle_increase"))
    engaged.state("Cruising", entry=calls("throttle_hold"))
    engaged.state("Resuming", entry=calls("throttle_resume"))
    engaged.initial_to("Accelerating")
    engaged.transition("Accelerating", "Cruising", on="at_target",
                       effect=[Assign("speed", parse_expr("target"))])
    engaged.transition("Cruising", "Resuming", on="dip")
    engaged.transition("Resuming", "Cruising", on="at_target")

    # A diagnostics mode that was prototyped and then cut off: its host
    # state always completes straight back to Standby, so the composite
    # can never become active (the paper's hierarchical pathology).
    diag_gate = b.state("DiagGate")
    diag = b.composite("Diagnostics", entry=calls("diag_begin"),
                       exit=calls("diag_end"))
    diag.state("SensorCheck", entry=calls("diag_sensors"))
    diag.state("ActuatorCheck", entry=calls("diag_actuators"))
    diag.initial_to("SensorCheck")
    diag.transition("SensorCheck", "ActuatorCheck", on="diag_next")
    diag.transition("ActuatorCheck", "final", on="diag_done")

    b.initial_to("Off")
    b.transition("Off", "Standby", on="power_on")
    b.transition("Standby", "Off", on="power_off")
    b.transition("Standby", "Engaged", on="set_speed",
                 guard="speed > 40",
                 effect=[Assign("target", parse_expr("speed"))])
    b.transition("Engaged", "Standby", on="brake")
    b.transition("Standby", "DiagGate", on="service_mode")
    b.transition("DiagGate", "Diagnostics", on="diag_enter")  # shadowed:
    b.completion("DiagGate", "Standby")  # ... this always fires first
    b.transition("Off", "final", on="shutdown")
    return b.build()


def main():
    machine = build_cruise_control()
    metrics = measure_model(machine)
    print(f"model: {metrics.total_states} states "
          f"({metrics.composite_states} composite), "
          f"{metrics.transitions} transitions, depth {metrics.max_depth}")
    print()

    # -- model debugging -----------------------------------------------
    print("model debugging trace (power_on, set_speed @60, at_target):")
    instance = InterpreterExecutor().load(machine).start()
    instance.inner.attributes["speed"] = 60   # poke the reference backend
    for event in ("power_on", "set_speed", "at_target"):
        instance.dispatch(event)
    for record in instance.trace.records[-10:]:
        print("   ", record)
    print("active configuration:", instance.inner.active_states)
    print()

    # -- the dead diagnostics mode ----------------------------------------
    print(find_dead_code(machine).summary())
    print()

    # -- sizes across patterns, before/after model optimization ------------
    print(f"{'pattern':15s} {'before':>8s} {'after':>8s} {'gain':>8s} "
          f"{'equivalent':>11s}")
    for gen_cls in ALL_GENERATORS:
        cmp = optimize_and_compare(machine, gen_cls.name)
        print(f"{gen_cls.name:15s} {cmp.size_before:8d} "
              f"{cmp.size_after:8d} {cmp.gain_percent:7.2f}% "
              f"{str(cmp.equivalence.equivalent):>11s}")
    print()

    # -- run the generated code on the RT32 substrate ----------------------
    print("executing generated nested-switch code (compiled at -Os):")
    gm = GeneratedMachine(machine, ALL_GENERATORS[1](), level=OptLevel.OS)
    gm.interp.store_word(gm.this + 8, 60)  # speed attribute, like above
    for event in ("power_on", "set_speed", "at_target", "brake"):
        gm.dispatch(event)
    for call in gm.calls:
        print("   call:", call[0])


if __name__ == "__main__":
    main()
