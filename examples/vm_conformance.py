#!/usr/bin/env python3
"""Execute what we compile: one machine, from model to simulated cycles.

Walks the execution layer end to end:

* build the paper's hierarchical machine and run the *reference
  interpreter* on an event scenario (the behavior every implementation
  must reproduce);
* generate C++ (Nested Switch), compile it with MGCC at ``-Os`` for
  RT32, and assemble the result into an executable image — byte-exact
  against the size accounting;
* execute the same events on the ISA simulator and diff the observable
  traces record by record;
* run the full differential conformance check (interpreter vs. executed
  code over a scenario set) and read the dynamic metrics off it;
* show the same machine on RT16, where the compact encoding changes the
  simulated cost.

Run: ``python examples/vm_conformance.py``
"""

from repro.compiler import OptLevel
from repro.exec import InterpreterExecutor, run_scenario
from repro.experiments.models import \
    hierarchical_machine_with_shadowed_composite
from repro.vm import CompiledProgram, check_vm_conformance


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    machine = hierarchical_machine_with_shadowed_composite()
    events = ["e1", "e2", "e5", "e3"]

    section("1. the reference semantics (UML interpreter)")
    reference = run_scenario(InterpreterExecutor(), machine, events)
    observable = reference.trace.observable()
    print(f"interpreter ran {len(events)} events -> "
          f"{len(observable)} observable records")
    for record in observable[:5]:
        print("   ", record)
    print("    ...")

    section("2. generate + compile + assemble (nested-switch, -Os, rt32)")
    program = CompiledProgram(machine, "nested-switch", level=OptLevel.OS,
                              target="rt32")
    module = program.compile_result.module
    image = program.image
    print(f"functions: {len(module.functions)}, "
          f"text {module.text_size} B, rodata {module.rodata_size} B")
    print(f"image text is byte-exact: len(image.text) == "
          f"{len(image.text)} == module.text_size")
    entry = image.func_entry[f"{program.cls_name}::dispatch"]
    print(f"dispatch() entry point at {entry:#x}")

    section("3. execute the same events on the ISA simulator")
    vm = program.boot()
    vm.send_all(events)
    print(f"simulator: {vm.metrics.summary()}")
    match = (reference.trace.observable_payloads()
             == vm.trace.observable_payloads())
    print(f"observable traces equal: {match}")
    print(f"final-state agreement:   "
          f"{reference.in_final == vm.is_final()}")

    section("4. differential conformance over a scenario set")
    report = check_vm_conformance(machine, pattern="nested-switch",
                                  level=OptLevel.OS, target="rt32")
    print(report.summary())
    print(f"dynamic metrics: {report.cycles_per_event:.1f} cycles/event, "
          f"peak dispatch {report.peak_dispatch_cycles} cycles over "
          f"{report.scenarios_run} scenarios")

    section("5. same machine, compact rt16 target")
    rt16 = check_vm_conformance(machine, pattern="nested-switch",
                                level=OptLevel.OS, target="rt16")
    print(rt16.summary())
    print(f"rt32 text {report.text_bytes} B vs rt16 text "
          f"{rt16.text_bytes} B — smaller code, "
          f"{'same' if rt16.cycles_per_event == report.cycles_per_event else 'different'} "
          f"dynamic cost under the shared cycle model")

    assert match and report.conformant and rt16.conformant
    print("\nall conformance checks passed")


if __name__ == "__main__":
    main()
