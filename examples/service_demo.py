"""The compile service end to end: persistent store + socket server.

Starts a compile service backed by a persistent artifact store, submits
work over a unix socket — single compiles and a deduplicated batch —
and then shows the punchline of the store layer: a *second* service
(standing in for a new process, a CI job, another host sharing the
directory) answers the same requests from disk without compiling
anything.

Run:  python examples/service_demo.py
"""

import tempfile

from repro.engine import ExperimentEngine
from repro.experiments.models import (
    flat_machine_with_unreachable_state,
    hierarchical_machine_with_shadowed_composite)
from repro.service import ServiceThread, compile_params

cache_dir = tempfile.mkdtemp(prefix="repro-demo-store-")
flat = flat_machine_with_unreachable_state()
hierarchical = hierarchical_machine_with_shadowed_composite()

print("=== cold service (empty store) ===")
engine = ExperimentEngine(cache_dir=cache_dir)
with ServiceThread(engine) as handle:
    print("listening on", handle.address)
    with handle.client() as client:
        print("ping ->", client.ping())

        result = client.compile_machine(flat, pattern="nested-switch",
                                        target="rt16")
        print(f"{result['machine']} [{result['pattern']}, "
              f"{result['level']}, {result['target']}] -> "
              f"{result['total_size']} bytes")

        # A batch grid with a repeat: the engine's planner compiles
        # each unique job once, results come back in input order.
        jobs = [compile_params(flat, pattern=p)
                for p in ("nested-switch", "state-table", "state-pattern",
                          "nested-switch")]
        jobs.append(compile_params(hierarchical, pattern="flat-switch"))
        batch = client.request("batch", jobs=jobs)
        sizes = [job["total_size"] for job in batch["results"]]
        print(f"batch of {len(jobs)} jobs -> sizes {sizes} "
              f"({batch['deduplicated']} deduplicated)")
        assert sizes[0] == sizes[3], "repeat job must match"

        stats = client.stats()
        print("per-client stats:", stats["clients"]["client-1"])
print("cold engine:", engine.describe())

print()
print("=== warm service (same store, fresh process) ===")
warm_engine = ExperimentEngine(cache_dir=cache_dir)
with ServiceThread(warm_engine) as handle:
    with handle.client() as client:
        again = client.compile_machine(flat, pattern="nested-switch",
                                       target="rt16")
assert again == result, "service answers must be reproducible"
assert warm_engine.stats.misses == 0, "warm service must not compile"
assert warm_engine.stats.disk_hits == 1
print("warm engine:", warm_engine.describe())
print("same request, zero compilation — served from", cache_dir)
