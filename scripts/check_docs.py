#!/usr/bin/env python3
"""Execute the documentation's Python code fences and example scripts.

Docs that show code which no longer runs are worse than no docs, so CI
executes every ```python fence in README.md and docs/*.md in a fresh
namespace (with ``src/`` importable) and fails on any exception —
including failing ``assert``s, which the fences use to state their
expected results.  Fences in other languages (bash, text) are listed
but not executed.

In default mode (no file arguments) every script under ``examples/``
is also executed in a subprocess and must exit 0 with some output —
the examples are documentation too.

Usage::

    python scripts/check_docs.py [FILE.md ...]   # default: README +
                                                 # docs/ + examples/
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import traceback

REPO = pathlib.Path(__file__).resolve().parents[1]
#: Opening fence: ``` plus an optional info string ("python", "python
#: copy", " text", ...); the language is the info string's first word.
_FENCE_OPEN = re.compile(r"^```\s*(\S*)")


def extract_fences(path: pathlib.Path):
    """Yield (start_line, language, source) per fenced block."""
    language = None
    start = 0
    buffer: list = []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        if language is None:
            match = _FENCE_OPEN.match(line)
            if match:
                language = match.group(1) or "text"
                start = number
                buffer = []
        elif line.strip() == "```":
            yield start, language, "\n".join(buffer)
            language = None
        else:
            buffer.append(line)


def run_python_fence(source: str) -> None:
    namespace = {"__name__": "__docfence__"}
    exec(compile(source, "<doc fence>", "exec"), namespace)


def run_example(path: pathlib.Path) -> str:
    """Execute one example script; raises on failure, returns stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([env["PYTHONPATH"]]
                               if env.get("PYTHONPATH") else []))
    proc = subprocess.run([sys.executable, str(path)], env=env,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise RuntimeError(
            f"{path.name} exited {proc.returncode}:\n"
            f"{proc.stderr[-2000:]}")
    if not proc.stdout.strip():
        raise RuntimeError(f"{path.name} produced no output")
    return proc.stdout


def main(argv) -> int:
    sys.path.insert(0, str(REPO / "src"))
    examples = [] if argv else sorted((REPO / "examples").glob("*.py"))
    files = [pathlib.Path(a).resolve() for a in argv] or \
        [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    failures = 0
    executed = 0
    for path in files:
        if not path.is_file():
            print(f"check_docs: missing file {path}", file=sys.stderr)
            failures += 1
            continue
        try:
            label = path.relative_to(REPO)
        except ValueError:   # file outside the repo: show it verbatim
            label = path
        for line, language, source in extract_fences(path):
            where = f"{label}:{line}"
            if language != "python":
                print(f"  skip       {where} ({language})")
                continue
            try:
                run_python_fence(source)
            except Exception:
                failures += 1
                print(f"  FAIL       {where}")
                traceback.print_exc()
            else:
                executed += 1
                print(f"  ok         {where}")
    for script in examples:
        where = script.relative_to(REPO)
        try:
            run_example(script)
        except Exception as exc:
            failures += 1
            print(f"  FAIL       {where}")
            print(f"             {exc}")
        else:
            executed += 1
            print(f"  ok         {where}")
    print(f"check_docs: {executed} python fence(s)/example(s) executed, "
          f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
