#!/usr/bin/env python3
"""Guard the persistent-cache contract of ``--cache-dir``.

Runs the full experiments CLI twice against one shared cache
directory and asserts the acceptance criteria of the store layer:

* the two runs' stdout is **byte-identical** (disk-served artifacts
  change nothing about the tables);
* the second (warm) run does **no recompute** worth speaking of and is
  served from disk: >= 90 % of its first-touch lookups (unique jobs)
  are disk hits.

The first run may itself be warm — CI restores the cache directory
across workflow runs — so the assertions only constrain the *second*
run: ``disk_hits / (disk_hits + misses)`` is the fraction of unique
work served without compilation, independent of how the store got
populated.  When the restored store was written by an older schema
generation every key misses, the cold run repopulates, and the warm
run still passes — exactly the self-invalidation the store promises.

Usage::

    python scripts/check_warm_cache.py [--cache-dir DIR] [--target NAME]
                                       [--threshold 0.9]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Subprocesses import `repro` like an installed package; keep src/ on
#: PYTHONPATH so the script works without `pip install -e .`.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")] + ([_ENV["PYTHONPATH"]]
                                if _ENV.get("PYTHONPATH") else []))

_STATS = re.compile(r"cache: (?P<hits>\d+) hits \((?P<disk>\d+) disk\) / "
                    r"(?P<misses>\d+) misses")


def run_cli(cache_dir: str, target: str) -> tuple:
    """One experiments-CLI run; returns (stdout_bytes, stats dict)."""
    cmd = [sys.executable, "-m", "repro.experiments", "--target", target,
           "--cache-dir", cache_dir, "--cache-stats"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_ENV,
                          capture_output=True)
    if proc.returncode != 0:
        sys.exit(f"experiments CLI failed (exit {proc.returncode}):\n"
                 f"{proc.stderr.decode(errors='replace')[-2000:]}")
    match = _STATS.search(proc.stderr.decode(errors="replace"))
    if match is None:
        sys.exit("could not find the cache-stats line on stderr")
    stats = {name: int(value)
             for name, value in match.groupdict().items()}
    return proc.stdout, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=None,
                        help="shared store directory (default: a "
                             "temporary one)")
    parser.add_argument("--target", default="rt32")
    parser.add_argument("--threshold", type=float, default=0.9,
                        help="minimum warm disk-hit fraction over unique "
                             "work (default %(default)s)")
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cache-")

    cold_out, cold = run_cli(cache_dir, args.target)
    warm_out, warm = run_cli(cache_dir, args.target)
    print(f"check_warm_cache: cold run  {cold} ({len(cold_out)} stdout "
          f"bytes)")
    print(f"check_warm_cache: warm run  {warm} ({len(warm_out)} stdout "
          f"bytes)")

    failures = []
    if warm_out != cold_out:
        failures.append("warm stdout differs from cold stdout")
    first_touch = warm["disk"] + warm["misses"]
    ratio = warm["disk"] / first_touch if first_touch else 0.0
    print(f"check_warm_cache: warm unique work {first_touch} jobs, "
          f"{warm['disk']} from disk ({ratio:.1%})")
    if ratio < args.threshold:
        failures.append(f"warm disk-hit fraction {ratio:.1%} < "
                        f"{args.threshold:.0%}")
    if warm["misses"] > warm["hits"]:
        failures.append("warm run recomputed more than it served")

    if failures:
        for failure in failures:
            print(f"check_warm_cache: FAIL — {failure}", file=sys.stderr)
        return 1
    print("check_warm_cache: OK — warm rerun byte-identical and "
          "disk-served")
    return 0


if __name__ == "__main__":
    sys.exit(main())
