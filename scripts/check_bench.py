#!/usr/bin/env python3
"""Benchmark regression guard.

Compares a fresh ``pytest-benchmark`` JSON run against the most recent
committed baseline (``BENCH_*.json`` in the repository root) and fails
when any shared benchmark regressed by more than the threshold
(default 25 %).  The *minimum* round time is compared (falling back to
median, then mean, when a file lacks it): scheduler/GC interference
only ever adds time, so the per-run minimum is by far the most stable
statistic — measured locally it varies a few percent between runs
where medians and means swing past the threshold on their own.

The baseline may have been captured on different hardware than the
fresh run (a committed baseline vs a CI runner), so per-benchmark
ratios are normalized by a suite-wide **drift anchor** before the
threshold applies.  The anchor is the *low quartile* of the ratios:
hardware drift slows every benchmark, so the least-slowed quartile
tracks it, while a code regression — even a broad one in the compiler
core — spares the non-compile benchmarks (interpreter, generators,
cache hits) that then hold the anchor near 1 and let the slowed
majority fail.  A benchmark regresses when its drift-normalized ratio
exceeds ``1 + threshold``.

Timing flaps are whole-process-correlated (load/frequency windows hit
a stretch of the suite at once), so before declaring a regression the
suite is re-run (``--retries``, default 1) and fresh times are merged
by per-benchmark min — a genuine code regression survives every
re-run; a noisy window does not.

With no ``BENCH_*.json`` checked in the script reports that and exits 0,
so CI can run it unconditionally; ``BENCH_baseline.json`` is committed,
which makes the guard active on every PR.

``--fleet-smoke`` runs a different gate entirely: a fixed-seed
10^4-instance fleet throughput smoke (``python -m repro.fleet smoke
--json``), asserting an absolute sustained events/sec floor and a
minimum speedup over per-instance interpretation.  Absolute floors are
deliberately conservative (100k events/sec where the observed rate is
tens of millions) so the gate trips on a broken vectorized path, not a
slow runner.

Usage:
    python scripts/check_bench.py [--fresh PATH] [--baseline PATH]
                                  [--threshold 0.25]
    python scripts/check_bench.py --fleet-smoke

Without ``--fresh`` the benchmark suite is run first (requires
pytest-benchmark).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def load_means(path: pathlib.Path) -> dict:
    """benchmark fullname -> min (or median/mean) round seconds, from a
    pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    means = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        value = stats.get("min", stats.get("median", stats.get("mean")))
        if name and value is not None:
            means[name] = value
    return means


def find_baseline(exclude: pathlib.Path | None) -> pathlib.Path | None:
    candidates = [p for p in REPO_ROOT.glob("BENCH_*.json")
                  if exclude is None or p.resolve() != exclude.resolve()]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def run_fresh() -> pathlib.Path:
    out = pathlib.Path(tempfile.mkdtemp()) / "bench_fresh.json"
    cmd = [sys.executable, "-m", "pytest", "benchmarks", "-q",
           "--benchmark-json", str(out), "--benchmark-warmup=off",
           "--benchmark-disable-gc", "--benchmark-min-rounds=10"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    if proc.returncode != 0:
        sys.exit(f"benchmark run failed (exit {proc.returncode})")
    return out


def compare(baseline: dict, fresh: dict, shared: list,
            threshold: float) -> list:
    """Print the per-benchmark comparison; return the regressed names."""
    ratios = {name: (fresh[name] / baseline[name] if baseline[name]
                     else 1.0) for name in shared}
    # Drift anchor: the low quartile of the ratios. Hardware drift moves
    # every benchmark, so the least-slowed quartile tracks it; a code
    # regression spares the unrelated benchmarks, which hold the anchor
    # down and expose the slowed ones. Only *slowdown* drift (> 1) is
    # normalized away: on uniformly faster hardware raw ratios are
    # already < 1 and dividing by a < 1 anchor would manufacture
    # regressions out of benchmarks that merely failed to speed up as
    # much as the rest.
    ordered = sorted(ratios.values())
    drift = max(ordered[len(ordered) // 4], 1.0)
    print(f"check_bench: suite-wide slowdown drift "
          f"{(drift - 1.0) * 100.0:+.1f}% (low-quartile ratio clamped "
          f"at 1.0; hardware/load, normalized away)")

    failures = []
    for name in shared:
        ratio = ratios[name]
        normalized = ratio / drift
        status = "OK"
        if normalized > 1.0 + threshold:
            status = "REGRESSION"
            failures.append(name)
        print(f"  {status:10s} {name}: {baseline[name]:.6f}s -> "
              f"{fresh[name]:.6f}s ({(ratio - 1.0) * 100.0:+.1f}% raw, "
              f"{(normalized - 1.0) * 100.0:+.1f}% vs drift)")
    return failures


def run_fleet_smoke(min_events_per_sec: float, min_speedup: float,
                    retries: int) -> int:
    """The fleet throughput gate: shell out to the fixed-seed smoke,
    parse its JSON, assert the floors.  Wall-clock, so a failed attempt
    gets re-run (a genuinely broken fast path fails every time)."""
    cmd = [sys.executable, "-m", "repro.fleet", "smoke",
           "--instances", "10000", "--seed", "0", "--json"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    for attempt in range(retries + 1):
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stderr, file=sys.stderr)
            sys.exit(f"fleet smoke failed (exit {proc.returncode})")
        result = json.loads(proc.stdout)
        eps = result["events_per_sec"]
        speedup = result["speedup_vs_interp"]
        print(f"check_bench --fleet-smoke: {result['instances']} "
              f"instances, {eps:,.0f} events/sec "
              f"({result['lane_events']} lane-events), "
              f"{speedup:.1f}x vs per-instance interpretation")
        if eps >= min_events_per_sec and speedup >= min_speedup:
            print(f"check_bench --fleet-smoke: PASS (floors: "
                  f"{min_events_per_sec:,.0f} events/sec, "
                  f"{min_speedup:.0f}x speedup)")
            return 0
        if attempt < retries:
            print(f"check_bench --fleet-smoke: below floor; re-running "
                  f"to rule out a noisy window "
                  f"(retry {attempt + 1}/{retries})")
    print(f"check_bench --fleet-smoke: FAIL - events/sec {eps:,.0f} "
          f"(floor {min_events_per_sec:,.0f}) speedup {speedup:.1f}x "
          f"(floor {min_speedup:.0f}x)")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=pathlib.Path,
                        help="pytest-benchmark JSON of the fresh run "
                             "(default: run the benchmarks/ suite now)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="baseline JSON (default: newest BENCH_*.json "
                             "in the repo root)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative min-round-time regression "
                             "(default: %(default)s)")
    parser.add_argument("--retries", type=int, default=1,
                        help="fresh re-runs merged by per-benchmark min "
                             "before declaring a regression (default: "
                             "%(default)s; 0 disables)")
    parser.add_argument("--fleet-smoke", action="store_true",
                        help="run the fixed-seed fleet throughput gate "
                             "instead of the baseline comparison")
    parser.add_argument("--min-events-per-sec", type=float,
                        default=100_000.0,
                        help="--fleet-smoke: absolute sustained "
                             "events/sec floor (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="--fleet-smoke: minimum speedup over "
                             "per-instance interpretation "
                             "(default: %(default)s)")
    args = parser.parse_args()

    if args.fleet_smoke:
        return run_fleet_smoke(args.min_events_per_sec, args.min_speedup,
                               args.retries)

    if args.fresh is not None and not args.fresh.is_file():
        sys.exit(f"check_bench: fresh run file not found: {args.fresh}")
    fresh_path = args.fresh if args.fresh else run_fresh()
    baseline_path = args.baseline or find_baseline(exclude=fresh_path)
    if baseline_path is None:
        print("check_bench: no BENCH_*.json baseline committed yet; "
              "nothing to compare against (inert pass).")
        return 0

    baseline = load_means(baseline_path)
    fresh = load_means(fresh_path)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print(f"check_bench: no shared benchmarks between "
              f"{baseline_path.name} and {fresh_path.name} (inert pass).")
        return 0

    failures = compare(baseline, fresh, shared, args.threshold)
    for attempt in range(args.retries if failures else 0):
        # Timing flaps are whole-process-correlated (load/frequency
        # windows), so a re-run merged by per-benchmark min is the
        # reliable tiebreak: a *code* regression survives every re-run.
        print(f"check_bench: {len(failures)} suspect benchmark(s); "
              f"re-running the suite to rule out a noisy window "
              f"(retry {attempt + 1}/{args.retries})")
        rerun = load_means(run_fresh())
        fresh = {name: min(fresh[name], rerun.get(name, fresh[name]))
                 for name in fresh}
        failures = compare(baseline, fresh, shared, args.threshold)
        if not failures:
            break

    if failures:
        print(f"check_bench: {len(failures)}/{len(shared)} benchmarks "
              f"regressed more than {args.threshold:.0%} vs "
              f"{baseline_path.name}")
        return 1
    print(f"check_bench: {len(shared)} benchmarks within "
          f"{args.threshold:.0%} of {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
