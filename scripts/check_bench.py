#!/usr/bin/env python3
"""Benchmark regression guard.

Compares a fresh ``pytest-benchmark`` JSON run against the most recent
committed baseline (``BENCH_*.json`` in the repository root) and fails
when any shared benchmark's mean time regressed by more than the
threshold (default 25 %).

Inert by design until the first baseline lands: with no ``BENCH_*.json``
checked in, the script reports that and exits 0, so CI can run it
unconditionally from day one.

Usage:
    python scripts/check_bench.py [--fresh PATH] [--baseline PATH]
                                  [--threshold 0.25]

Without ``--fresh`` the benchmark suite is run first (requires
pytest-benchmark).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def load_means(path: pathlib.Path) -> dict:
    """benchmark fullname -> mean seconds, from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    means = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and mean is not None:
            means[name] = mean
    return means


def find_baseline(exclude: pathlib.Path | None) -> pathlib.Path | None:
    candidates = [p for p in REPO_ROOT.glob("BENCH_*.json")
                  if exclude is None or p.resolve() != exclude.resolve()]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def run_fresh() -> pathlib.Path:
    out = pathlib.Path(tempfile.mkdtemp()) / "bench_fresh.json"
    cmd = [sys.executable, "-m", "pytest", "benchmarks", "-q",
           "--benchmark-json", str(out),
           "--benchmark-warmup=off", "--benchmark-min-rounds=1"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    if proc.returncode != 0:
        sys.exit(f"benchmark run failed (exit {proc.returncode})")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=pathlib.Path,
                        help="pytest-benchmark JSON of the fresh run "
                             "(default: run the benchmarks/ suite now)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="baseline JSON (default: newest BENCH_*.json "
                             "in the repo root)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative mean-time regression "
                             "(default: %(default)s)")
    args = parser.parse_args()

    if args.fresh is not None and not args.fresh.is_file():
        sys.exit(f"check_bench: fresh run file not found: {args.fresh}")
    fresh_path = args.fresh if args.fresh else run_fresh()
    baseline_path = args.baseline or find_baseline(exclude=fresh_path)
    if baseline_path is None:
        print("check_bench: no BENCH_*.json baseline committed yet; "
              "nothing to compare against (inert pass).")
        return 0

    baseline = load_means(baseline_path)
    fresh = load_means(fresh_path)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print(f"check_bench: no shared benchmarks between "
              f"{baseline_path.name} and {fresh_path.name} (inert pass).")
        return 0

    failures = []
    for name in shared:
        ratio = fresh[name] / baseline[name] if baseline[name] else 1.0
        status = "OK"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(name)
        print(f"  {status:10s} {name}: {baseline[name]:.6f}s -> "
              f"{fresh[name]:.6f}s ({(ratio - 1.0) * 100.0:+.1f}%)")

    if failures:
        print(f"check_bench: {len(failures)}/{len(shared)} benchmarks "
              f"regressed more than {args.threshold:.0%} vs "
              f"{baseline_path.name}")
        return 1
    print(f"check_bench: {len(shared)} benchmarks within "
          f"{args.threshold:.0%} of {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
