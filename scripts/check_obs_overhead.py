#!/usr/bin/env python3
"""CI gate for :mod:`repro.obs`: tracing must be free when off and
complete when on.

Two checks:

1. **Disabled overhead** — the same cold compile is benchmarked twice,
   interleaved: once with tracing *disabled* (the shipped default:
   every ``span()`` call returns :data:`~repro.obs.trace.NOOP_SPAN`
   after one ContextVar read and a float compare) and once with the
   instrumentation *stubbed out* (each instrumented module's ``_span``
   replaced by a bare NOOP_SPAN thunk — the closest a Python build
   gets to compiling the tracepoints away).  Min-of-N for both; the
   disabled build must be within ``--tolerance`` (default 5 %) of the
   stubbed one.
2. **Traced completeness** — a 2-worker / 2-shard cluster serves one
   traced batch; the assembled trace must contain the server's
   ``service.batch`` span, at least one ``worker.chunk`` span *per
   dispatched chunk* — every one a child of the batch span — and the
   Chrome-trace export must round-trip through ``json.loads``.

Exit 0 when both hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.trace import (NOOP_SPAN, configure,              # noqa: E402
                             get_tracer)
from repro.experiments.workload import (WorkloadSpec,           # noqa: E402
                                        generate_machine)

#: Every module whose hot path goes through a ``_span`` binding.
_INSTRUMENTED = (
    "repro.pipeline",
    "repro.engine.cache",
    "repro.engine.core",
    "repro.compiler.driver",
    "repro.compiler.units",
    "repro.store.artifact",
    "repro.vm.image",
    "repro.fleet.harness",
)


def _noop_span(name, parent=None):
    return NOOP_SPAN


class _StubbedSpans:
    """Swap each instrumented module's ``_span`` for a bare thunk."""

    def __enter__(self):
        import importlib
        self._saved = []
        for name in _INSTRUMENTED:
            module = importlib.import_module(name)
            self._saved.append((module, module._span))
            module._span = _noop_span
        return self

    def __exit__(self, *exc_info):
        for module, original in self._saved:
            module._span = original


def _compile_once(machine) -> None:
    from repro.pipeline import compile_machine
    from repro.vm.image import assemble
    result = compile_machine(machine, pattern="state-pattern")
    assemble(result.module)


def check_disabled_overhead(trials: int, tolerance: float) -> list:
    """Interleaved min-of-N: disabled tracing vs stubbed-out spans."""
    configure(sample_ratio=0.0)
    machine = generate_machine(WorkloadSpec(n_live=8,
                                            events_per_state=2, seed=5))
    _compile_once(machine)                 # warm imports and pools
    disabled = stubbed = float("inf")
    for _ in range(max(1, trials)):
        t0 = time.perf_counter()
        _compile_once(machine)
        disabled = min(disabled, time.perf_counter() - t0)
        with _StubbedSpans():
            t0 = time.perf_counter()
            _compile_once(machine)
            stubbed = min(stubbed, time.perf_counter() - t0)
    ratio = disabled / stubbed if stubbed > 0 else float("inf")
    print(f"disabled {1e3 * disabled:.2f} ms vs stubbed "
          f"{1e3 * stubbed:.2f} ms -> ratio {ratio:.3f} "
          f"(allowed {1.0 + tolerance:.2f})")
    if ratio > 1.0 + tolerance:
        return [f"disabled tracing is {ratio:.3f}x the untraced "
                f"baseline (> {1.0 + tolerance:.2f}x)"]
    return []


def check_traced_cluster() -> list:
    """One traced batch over a real 2-worker cluster: every chunk must
    contribute spans, all parented under the server's batch span."""
    from repro.service.protocol import compile_params
    from repro.service.server import ServiceThread

    problems = []
    configure(sample_ratio=1.0, process="gate-client")
    get_tracer().clear()
    machines = [generate_machine(WorkloadSpec(
        n_live=4, events_per_state=2, seed=seed)) for seed in range(6)]
    params_list = [compile_params(m) for m in machines]
    n_unique = len({json.dumps(p, sort_keys=True) for p in params_list})
    with tempfile.TemporaryDirectory() as tmp:
        with ServiceThread(workers=2, shards=2, cache_dir=tmp) as handle:
            handle.wait_workers_ready()
            with handle.client() as client:
                results = client.submit_batch(params_list)
        if len(results) != len(machines):
            problems.append(f"batch returned {len(results)} of "
                            f"{len(machines)} results")
        spans = get_tracer().drain()
        configure(sample_ratio=0.0)
        by_id = {s["span_id"]: s for s in spans}
        batch = [s for s in spans if s["name"] == "service.batch"]
        chunks = [s for s in spans if s["name"] == "worker.chunk"]
        jobs = [s for s in spans if s["name"] == "worker.compile"]
        if len(batch) != 1:
            problems.append(f"expected 1 service.batch span, "
                            f"got {len(batch)}")
        if not chunks:
            problems.append("no worker.chunk spans came back")
        for chunk in chunks:
            parent = by_id.get(chunk.get("parent_id"))
            if parent is None or parent["name"] != "service.batch":
                problems.append(f"worker.chunk {chunk['span_id']} is "
                                "not a child of the batch span")
        # One worker.compile span per unique job, each inside a chunk.
        if len(jobs) < n_unique:
            problems.append(f"{len(jobs)} worker.compile spans for "
                            f"{n_unique} unique jobs")
        if len(set(s["span_id"] for s in spans)) != len(spans):
            problems.append("span ids are not unique")
        # The export must hold every span and round-trip as JSON.
        from repro.obs.export import write_chrome_trace
        out = pathlib.Path(tmp) / "trace.json"
        write_chrome_trace(str(out), spans)
        document = json.loads(out.read_text(encoding="utf-8"))
        events = [e for e in document["traceEvents"]
                  if e.get("ph") == "X"]
        if len(events) != len(spans):
            problems.append(f"export holds {len(events)} duration "
                            f"events for {len(spans)} spans")
        if document["otherData"]["span_count"] != len(spans):
            problems.append("otherData.span_count disagrees with the "
                            "span buffer")
        print(f"traced cluster batch: {len(spans)} spans, "
              f"{len(chunks)} chunk span(s), {len(jobs)} compile "
              f"span(s), export round-trips")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gate repro.obs: near-zero disabled overhead, "
                    "complete traces when enabled")
    parser.add_argument("--trials", type=int, default=5,
                        help="interleaved bench trials (default "
                             "%(default)s; min-of-N)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed disabled/untraced overhead "
                             "(default %(default)s = 5%%)")
    args = parser.parse_args(argv)

    problems = check_disabled_overhead(args.trials, args.tolerance)
    problems += check_traced_cluster()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("obs overhead gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
