#!/usr/bin/env python3
"""Break a cold compile down by pipeline stage.

Runs the real monolithic pipeline (``repro.pipeline.compile_machine``
plus assembly) under a private 100 %-sampled :mod:`repro.obs` tracer
and aggregates the compiler's own stage/pass spans — frontend
(generate, lower), middle end (inline, each SSA pass, SSA
construction/destruction), backend (isel, fuse, regalloc, peephole,
prologue) and assembly — into a table of milliseconds and shares.
There is no second timing system here: the numbers are exactly the
spans every traced run exports, so this is the measurement behind the
delta-compile design (the middle end and backend dominate a cold
compile, which is the work the per-unit cache
(:mod:`repro.compiler.units`) skips for unchanged units).

Usage::

    python scripts/profile_compile.py [--pattern state-pattern]
        [--level -Os] [--target rt32] [--n-live 20]
        [--events-per-state 3] [--seed 3] [--repeat 3]
        [--trace-out TRACE.json]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.compiler import OptLevel                             # noqa: E402
from repro.compiler.target import resolve_target                # noqa: E402
from repro.experiments.workload import (WorkloadSpec,           # noqa: E402
                                        generate_machine)
from repro.obs.export import write_chrome_trace                 # noqa: E402
from repro.obs.trace import Tracer, set_tracer, span            # noqa: E402
from repro.pipeline import compile_machine                      # noqa: E402
from repro.vm.image import assemble                             # noqa: E402

#: Table rows in pipeline order (stage -> which phase it belongs to).
STAGE_PHASES = [
    ("generate", "frontend"), ("lower", "frontend"),
    ("inline", "middle"), ("ssa-build", "middle"),
    ("ccp", "middle"), ("cse", "middle"), ("copyprop", "middle"),
    ("dce", "middle"), ("cfg", "middle"), ("ssa-out", "middle"),
    ("isel", "backend"), ("fuse", "backend"), ("regalloc", "backend"),
    ("peephole", "backend"), ("prologue", "backend"),
    ("assemble", "assemble"),
]

#: Span name -> table stage.  The compiler emits ``stage.<name>`` for
#: structural stages and ``pass.<name>`` per SSA pass.
SPAN_STAGES = {
    **{f"stage.{name}": name for name, _ in STAGE_PHASES},
    **{f"pass.{name}": name for name, phase in STAGE_PHASES
       if phase == "middle"},
}


def profile_once(machine, pattern: str, level: OptLevel, target) -> list:
    """One traced cold compile; returns the finished span dicts."""
    tracer = Tracer(sample_ratio=1.0, max_spans=1_000_000,
                    process="profile")
    previous = set_tracer(tracer)
    try:
        with span("profile.compile") as root:
            root.set(machine=machine.name, pattern=pattern,
                     level=level.value, target=target.name)
            result = compile_machine(machine, pattern=pattern,
                                     level=level, target=target)
            assemble(result.module)
        return tracer.drain()
    finally:
        set_tracer(previous)


def aggregate(spans) -> dict:
    """Sum span durations into the stage table (seconds)."""
    seconds = {name: 0.0 for name, _ in STAGE_PHASES}
    for rendered in spans:
        stage = SPAN_STAGES.get(rendered.get("name", ""))
        if stage is not None:
            seconds[stage] += rendered.get("dur", 0.0)
    return seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-stage cold-compile timing table (from obs "
                    "spans)",
        epilog="example: python scripts/profile_compile.py "
               "--repeat 5 --trace-out compile-trace.json  "
               "# table on stdout + a Perfetto-loadable trace of the "
               "last run")
    parser.add_argument("--pattern", default="state-pattern")
    parser.add_argument("--level", default="-Os",
                        choices=[l.value for l in OptLevel])
    parser.add_argument("--target", default=None)
    parser.add_argument("--n-live", type=int, default=20)
    parser.add_argument("--events-per-state", type=int, default=3)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--trace-out", default=None,
                        metavar="TRACE.json",
                        help="also write the last run's spans as "
                             "Chrome trace JSON")
    args = parser.parse_args(argv)

    level = OptLevel(args.level)
    target = resolve_target(args.target)
    machine = generate_machine(WorkloadSpec(
        n_live=args.n_live, events_per_state=args.events_per_state,
        seed=args.seed))

    totals = {name: 0.0 for name, _ in STAGE_PHASES}
    last_spans = []
    for _ in range(max(1, args.repeat)):
        last_spans = profile_once(machine, args.pattern, level, target)
        for stage, secs in aggregate(last_spans).items():
            totals[stage] += secs
    for stage in totals:
        totals[stage] /= max(1, args.repeat)
    grand = sum(totals.values()) or 1e-12

    print(f"cold compile profile: {machine.name} "
          f"[{args.pattern}, {level.value}, {target.name}], "
          f"mean of {max(1, args.repeat)} run(s)")
    print(f"{'stage':<12} {'phase':<10} {'ms':>9} {'share':>7}")
    print("-" * 41)
    phase_totals = {}
    for stage, phase in STAGE_PHASES:
        secs = totals[stage]
        phase_totals[phase] = phase_totals.get(phase, 0.0) + secs
        print(f"{stage:<12} {phase:<10} {1e3 * secs:>9.2f} "
              f"{secs / grand:>6.1%}")
    print("-" * 41)
    for phase, secs in phase_totals.items():
        print(f"{phase:<23} {1e3 * secs:>9.2f} {secs / grand:>6.1%}")
    print(f"{'total':<23} {1e3 * grand:>9.2f} {'100.0%':>7}")
    if args.trace_out:
        count = write_chrome_trace(
            args.trace_out, last_spans,
            metadata={"mode": "profile", "machine": machine.name,
                      "pattern": args.pattern, "level": level.value})
        print(f"wrote {count} span(s) to {args.trace_out}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
