#!/usr/bin/env python3
"""Break a cold compile down by pipeline stage.

Runs the exact monolithic pipeline (the same helpers
``compile_program`` is built from) with a timer around every stage —
frontend (generate, lower), middle end (inline, each SSA pass, SSA
construction/destruction), backend (isel, fuse, regalloc, peephole)
and assembly — and prints a table of milliseconds and shares.  This is
the measurement behind the delta-compile design: the middle end and
backend dominate a cold compile, which is exactly the work the
per-unit cache (:mod:`repro.compiler.units`) skips for unchanged
units.

Usage::

    python scripts/profile_compile.py [--pattern state-pattern]
        [--level -Os] [--target rt32] [--n-live 20]
        [--events-per-state 3] [--seed 3] [--repeat 3]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codegen import generator_by_name                     # noqa: E402
from repro.compiler.driver import (SSA_PASS_SEQUENCE,           # noqa: E402
                                   OptLevel, _add_prologue_epilogue,
                                   _finish_iteration, inline_policy_for,
                                   make_rodata_sink, make_switch_lowering,
                                   middle_end_iterations)
from repro.compiler.asm import AsmModule                        # noqa: E402
from repro.compiler.frontend.lower import lower_unit            # noqa: E402
from repro.compiler.gimple.ssa import to_ssa, verify_ssa        # noqa: E402
from repro.compiler.passes.inline import run_inline             # noqa: E402
from repro.compiler.rtl.isel import select_function             # noqa: E402
from repro.compiler.rtl.peephole import (fuse_compare_branches,  # noqa: E402
                                         run_peephole)
from repro.compiler.rtl.regalloc import allocate_registers      # noqa: E402
from repro.compiler.target import resolve_target                # noqa: E402
from repro.experiments.workload import (WorkloadSpec,           # noqa: E402
                                        generate_machine)
from repro.vm.image import assemble                             # noqa: E402

#: Table rows in pipeline order (stage -> which phase it belongs to).
STAGE_PHASES = [
    ("generate", "frontend"), ("lower", "frontend"),
    ("inline", "middle"), ("ssa-build", "middle"),
    ("ccp", "middle"), ("cse", "middle"), ("copyprop", "middle"),
    ("dce", "middle"), ("cfg", "middle"), ("ssa-out", "middle"),
    ("isel", "backend"), ("fuse", "backend"), ("regalloc", "backend"),
    ("peephole", "backend"), ("prologue", "backend"),
    ("assemble", "assemble"),
]


def profile_once(machine, pattern: str, level: OptLevel, target) -> dict:
    """One timed cold compile; returns stage -> seconds."""
    seconds = {name: 0.0 for name, _ in STAGE_PHASES}

    def timed(stage, thunk):
        t0 = time.perf_counter()
        result = thunk()
        seconds[stage] += time.perf_counter() - t0
        return result

    generator = generator_by_name(pattern)
    unit = timed("generate", lambda: generator.generate(machine))
    program = timed("lower", lambda: lower_unit(unit))

    if level in (OptLevel.O2, OptLevel.OS):
        timed("inline",
              lambda: run_inline(program, inline_policy_for(level)))
    if level.optimizes:
        for _ in range(middle_end_iterations(level)):
            def build():
                for fn in program.functions.values():
                    to_ssa(fn)
                    verify_ssa(fn)
            timed("ssa-build", build)
            for name, run_pass in SSA_PASS_SEQUENCE:
                timed(name, lambda run_pass=run_pass: [
                    run_pass(fn) for fn in program.functions.values()])
            timed("ssa-out", lambda: [
                _finish_iteration(fn)
                for fn in program.functions.values()])

    module = AsmModule(program.name, target=target)
    lowering = make_switch_lowering(level, target)
    jump_tables = []
    sink = make_rodata_sink(jump_tables, target)
    for fn in program.functions.values():
        rtl = timed("isel", lambda fn=fn: select_function(
            fn, lowering, sink, target=target))
        if level.optimizes:
            timed("fuse", lambda rtl=rtl: fuse_compare_branches(
                rtl, target=target))
        timed("regalloc", lambda rtl=rtl: allocate_registers(
            rtl, target=target))
        if level.optimizes:
            timed("peephole", lambda rtl=rtl: run_peephole(rtl))
        timed("prologue", lambda rtl=rtl: _add_prologue_epilogue(
            rtl, target))
        module.functions.append(rtl)
    module.data_objects.extend(program.data.values())
    module.data_objects.extend(jump_tables)
    timed("assemble", lambda: assemble(module, target=target))
    return seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-stage cold-compile timing table")
    parser.add_argument("--pattern", default="state-pattern")
    parser.add_argument("--level", default="-Os",
                        choices=[l.value for l in OptLevel])
    parser.add_argument("--target", default=None)
    parser.add_argument("--n-live", type=int, default=20)
    parser.add_argument("--events-per-state", type=int, default=3)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    level = OptLevel(args.level)
    target = resolve_target(args.target)
    machine = generate_machine(WorkloadSpec(
        n_live=args.n_live, events_per_state=args.events_per_state,
        seed=args.seed))

    totals = {name: 0.0 for name, _ in STAGE_PHASES}
    for _ in range(max(1, args.repeat)):
        for stage, secs in profile_once(machine, args.pattern, level,
                                        target).items():
            totals[stage] += secs
    for stage in totals:
        totals[stage] /= max(1, args.repeat)
    grand = sum(totals.values()) or 1e-12

    print(f"cold compile profile: {machine.name} "
          f"[{args.pattern}, {level.value}, {target.name}], "
          f"mean of {max(1, args.repeat)} run(s)")
    print(f"{'stage':<12} {'phase':<10} {'ms':>9} {'share':>7}")
    print("-" * 41)
    phase_totals = {}
    for stage, phase in STAGE_PHASES:
        secs = totals[stage]
        phase_totals[phase] = phase_totals.get(phase, 0.0) + secs
        print(f"{stage:<12} {phase:<10} {1e3 * secs:>9.2f} "
              f"{secs / grand:>6.1%}")
    print("-" * 41)
    for phase, secs in phase_totals.items():
        print(f"{phase:<23} {1e3 * secs:>9.2f} {secs / grand:>6.1%}")
    print(f"{'total':<23} {1e3 * grand:>9.2f} {'100.0%':>7}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
