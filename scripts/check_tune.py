#!/usr/bin/env python3
"""Gate the autotuner's contract: conformant, Pareto-optimal, replayable.

Runs ``python -m repro.tune search`` twice against one shared cache
directory and asserts the acceptance criteria of :mod:`repro.tune`:

* the **cold** search's winner is conformant and Pareto-optimal on
  (cycles/event, text bytes) among every measured cell — recomputed
  here from the emitted record, not trusted from the record's own
  bookkeeping — and ``TuningRecord.verify()`` agrees;
* the **warm** rerun is served entirely from the persisted record:
  stdout is byte-identical to the cold run and the engine's module
  cache reports **zero misses** (one lookup, one disk hit);
* ``show`` peeks the persisted record without recomputing anything and
  prints the same bytes.

Usage::

    python scripts/check_tune.py [--cache-dir DIR] [--machine NAME]
                                 [--target NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Subprocesses import `repro` like an installed package; keep src/ on
#: PYTHONPATH so the script works without `pip install -e .`.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")] + ([_ENV["PYTHONPATH"]]
                                if _ENV.get("PYTHONPATH") else []))


def run_tune(subcommand: str, cache_dir: str, machine: str, target: str,
             stats_path: pathlib.Path | None = None) -> tuple:
    """One ``python -m repro.tune`` run; returns (stdout, stats|None)."""
    cmd = [sys.executable, "-m", "repro.tune", subcommand,
           "--machine", machine, "--target", target,
           "--cache-dir", cache_dir, "--json"]
    if stats_path is not None:
        cmd += ["--stats-out", str(stats_path)]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_ENV,
                          capture_output=True)
    if proc.returncode != 0:
        sys.exit(f"tune {subcommand} failed (exit {proc.returncode}):\n"
                 f"{proc.stderr.decode(errors='replace')[-2000:]}")
    stats = (json.loads(stats_path.read_text())
             if stats_path is not None else None)
    return proc.stdout, stats


def check_winner(record: dict) -> None:
    """Winner must be conformant and Pareto-optimal among *all* cells."""
    winner = record.get("winner")
    if not winner:
        sys.exit("check_tune: FAIL - record has no winner")
    if not winner["conformant"]:
        sys.exit("check_tune: FAIL - winner is not conformant: "
                 f"{winner}")
    label = (f"{winner['pattern']} {winner['level']} "
             f"passes={list(winner['passes'])}")
    for cell in record["cells"]:
        dominates = (cell["conformant"]
                     and cell["cycles_per_event"] <= winner["cycles_per_event"]
                     and cell["text_bytes"] <= winner["text_bytes"]
                     and (cell["cycles_per_event"] < winner["cycles_per_event"]
                          or cell["text_bytes"] < winner["text_bytes"]))
        if dominates:
            sys.exit(f"check_tune: FAIL - winner {label} is dominated "
                     f"on (cycles/event, text bytes) by {cell['pattern']} "
                     f"{cell['level']} passes={list(cell['passes'])}")
    print(f"check_tune: winner {label} is conformant and Pareto-optimal "
          f"among {len(record['cells'])} measured cells")


def check_record_verifies(record: dict) -> None:
    """The library's own verify() must agree with the emitted JSON."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.tune import TuningRecord
    problems = TuningRecord.from_dict(record).verify()
    if problems:
        sys.exit("check_tune: FAIL - record.verify() reports: "
                 + "; ".join(problems))
    print("check_tune: record.verify() is clean")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=None,
                        help="shared store directory (default: a "
                             "temporary one)")
    parser.add_argument("--machine", default="hierarchical")
    parser.add_argument("--target", default="rt32")
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-tune-")
    stats_path = pathlib.Path(tempfile.mkdtemp(prefix="repro-tune-stats-"))

    cold_out, _ = run_tune("search", cache_dir, args.machine, args.target)
    record = json.loads(cold_out)
    check_winner(record)
    check_record_verifies(record)

    warm_out, warm = run_tune("search", cache_dir, args.machine,
                              args.target,
                              stats_path=stats_path / "warm.json")
    if warm_out != cold_out:
        sys.exit("check_tune: FAIL - warm rerun is not byte-identical "
                 "to the cold search")
    module = warm["module"]
    if module["misses"] != 0:
        sys.exit("check_tune: FAIL - warm rerun recomputed "
                 f"{module['misses']} artifact(s); expected pure "
                 f"cache/record hits: {module}")
    if module["hits"] < 1:
        sys.exit(f"check_tune: FAIL - warm rerun did not hit the "
                 f"persisted record: {module}")
    print(f"check_tune: warm rerun byte-identical, served from the "
          f"store ({module['hits']} hit(s), {module['disk_hits']} from "
          f"disk, 0 misses)")

    shown, _ = run_tune("show", cache_dir, args.machine, args.target)
    if shown != cold_out:
        sys.exit("check_tune: FAIL - 'show' printed different bytes "
                 "than the search that persisted the record")
    print("check_tune: PASS - 'show' replays the persisted record "
          "byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
