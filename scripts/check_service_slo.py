#!/usr/bin/env python3
"""Gate the compile cluster's SLO: faster than one loop, byte-exact.

The multi-worker service exists to buy throughput without giving up
the engine's defining property — every served payload is exactly what
an in-process compile produces.  This script measures both sides of
that bargain and fails CI when either slips:

1. **Baseline**: a deterministic mixed corpus
   (:func:`repro.service.loadgen.build_corpus` — workload families,
   mutant chains, fuzz machines, duplicates) is driven through a
   single-loop in-process server on a cold cache.
2. **Cluster**: the same corpus, cold again, through a
   ``--workers N --shards M`` cluster (fresh sharded store), after a
   worker-readiness barrier so pool spin-up never skews the window.
3. **Verify**: every payload from *both* runs is recompiled on a local
   reference engine and must be canonical-JSON identical; one
   divergence fails the gate regardless of speed.
4. **SLO**: the cluster must beat the baseline by ``--min-speedup``
   (2.0 in CI, where runners have the cores to show it — pass a lower
   floor on a 1-core box where process parallelism physically cannot
   pay), clear an absolute ``--min-jobs-per-sec`` floor, and keep
   batch p99 under ``--max-p99-ms``.  Floors are deliberately
   conservative: the gate exists to catch a broken cluster path, not a
   slow runner.
5. **Schema**: the cluster's ``metrics`` document is asserted against
   the scrape contract (``schema`` stamp, per-endpoint percentiles,
   queue gauges, worker counters, cache counters, shard sizes) so
   dashboards and this gate never silently drift apart.

Usage:
    python scripts/check_service_slo.py [--workers 2] [--shards 2]
        [--min-speedup 2.0] [--json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ExperimentEngine                     # noqa: E402
from repro.service import (LoadgenSpec, ServiceThread, build_corpus,
                           run_load, verify_payloads)         # noqa: E402
from repro.service.metrics import METRICS_SCHEMA_VERSION      # noqa: E402


def check_metrics_schema(metrics: dict, workers: int) -> list:
    """Violations of the scrape contract (empty list == conforming)."""
    problems = []
    if metrics.get("schema") != METRICS_SCHEMA_VERSION:
        problems.append(f"schema stamp {metrics.get('schema')!r} != "
                        f"{METRICS_SCHEMA_VERSION}")
    batch = metrics.get("endpoints", {}).get("batch")
    if not batch:
        problems.append("no 'batch' endpoint histogram")
    else:
        for key in ("count", "mean_ms", "p50_ms", "p90_ms", "p99_ms"):
            if batch.get(key) is None:
                problems.append(f"endpoints.batch.{key} missing/null")
    queue = metrics.get("queue", {})
    for key in ("depth", "limit", "high_water", "busy_rejections"):
        if key not in queue:
            problems.append(f"queue.{key} missing")
    workers_block = metrics.get("workers", {})
    for key in ("configured", "mode", "jobs_done", "utilization",
                "deaths", "restarts", "retried_chunks", "failed_chunks"):
        if key not in workers_block:
            problems.append(f"workers.{key} missing")
    if workers_block.get("configured") != workers:
        problems.append(f"workers.configured = "
                        f"{workers_block.get('configured')} != {workers}")
    cache = metrics.get("cache", {})
    for key in ("hits", "misses", "disk_hits", "hit_rate"):
        if key not in cache:
            problems.append(f"cache.{key} missing")
    if "shards" not in metrics:
        problems.append("shards block missing (sharded store expected)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=6)
    parser.add_argument("--machines", type=int, default=3)
    parser.add_argument("--mutants", type=int, default=3)
    parser.add_argument("--fuzz-machines", type=int, default=4)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="cluster-vs-single-loop throughput floor "
                             "(default %(default)s; needs >= workers+1 "
                             "cores to be meaningful)")
    parser.add_argument("--min-jobs-per-sec", type=float, default=2.0,
                        help="absolute cluster throughput floor "
                             "(default %(default)s)")
    parser.add_argument("--max-p99-ms", type=float, default=60000.0,
                        help="batch-request p99 ceiling, ms "
                             "(default %(default)s)")
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    failures = []
    corpus = build_corpus(LoadgenSpec(
        machines=args.machines, mutants=args.mutants,
        fuzz_machines=args.fuzz_machines, seed=args.seed))
    if len(corpus) < 10:
        failures.append(f"corpus collapsed to {len(corpus)} jobs")

    # 1. single-loop baseline, cold in-memory cache
    with ServiceThread(ExperimentEngine()) as handle:
        baseline = run_load(handle.client, corpus,
                            batch_size=args.batch_size,
                            clients=args.clients)
    reference = ExperimentEngine()
    baseline_divergent = verify_payloads(corpus, baseline.payloads,
                                         reference)

    # 2. the cluster, cold sharded store
    with tempfile.TemporaryDirectory(prefix="slo-store-") as store:
        with ServiceThread(workers=args.workers, shards=args.shards,
                           cache_dir=store,
                           queue_limit=args.queue_limit) as handle:
            ready = handle.wait_workers_ready()
            if ready != args.workers:
                failures.append(f"only {ready}/{args.workers} workers "
                                f"came up")
            cluster = run_load(handle.client, corpus,
                               batch_size=args.batch_size,
                               clients=args.clients)
            with handle.client() as client:
                metrics = client.metrics()
    cluster_divergent = verify_payloads(corpus, cluster.payloads,
                                        reference)

    # 3. byte identity is non-negotiable
    if baseline_divergent:
        failures.append(f"{len(baseline_divergent)} baseline payloads "
                        f"diverge from in-process compiles")
    if cluster_divergent:
        failures.append(f"{len(cluster_divergent)} cluster payloads "
                        f"diverge from in-process compiles")

    # 4. the SLO
    speedup = (cluster.jobs_per_sec / baseline.jobs_per_sec
               if baseline.jobs_per_sec else 0.0)
    if speedup < args.min_speedup:
        failures.append(f"speedup {speedup:.2f}x < floor "
                        f"{args.min_speedup:.2f}x "
                        f"(cluster {cluster.jobs_per_sec:.1f} vs "
                        f"baseline {baseline.jobs_per_sec:.1f} jobs/s)")
    if cluster.jobs_per_sec < args.min_jobs_per_sec:
        failures.append(f"cluster throughput {cluster.jobs_per_sec:.1f} "
                        f"jobs/s < floor {args.min_jobs_per_sec}")
    if cluster.p99_ms > args.max_p99_ms:
        failures.append(f"batch p99 {cluster.p99_ms:.0f} ms > ceiling "
                        f"{args.max_p99_ms:.0f} ms")

    # 5. the scrape contract
    failures.extend(check_metrics_schema(metrics, args.workers))

    summary = {
        "corpus_jobs": len(corpus),
        "baseline": baseline.as_dict(),
        "cluster": cluster.as_dict(),
        "speedup": speedup,
        "divergent_payloads": len(baseline_divergent)
        + len(cluster_divergent),
        "metrics_queue": metrics.get("queue"),
        "metrics_workers": {
            key: metrics.get("workers", {}).get(key)
            for key in ("configured", "jobs_done", "utilization",
                        "deaths", "restarts")},
        "shards": metrics.get("shards"),
        "failures": failures,
    }
    print(json.dumps(summary, indent=None if args.json else 2,
                     sort_keys=True))
    if failures:
        for failure in failures:
            print(f"SLO FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"service SLO ok: {speedup:.2f}x over single loop, "
          f"{cluster.jobs_per_sec:.1f} jobs/s, 0 divergences",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
