#!/usr/bin/env python3
"""Gate the delta-compile contract: edit one transition, pay for one.

For a corpus of generated machines this script

1. compiles each machine cold through the per-unit path (populating a
   unit cache),
2. applies :func:`repro.experiments.workload.mutate_one_transition` —
   one event transition becomes a self-loop, everything else is
   untouched,
3. recompiles the mutant against the warm unit cache, and
4. verifies the delta module is **byte-identical** to a monolithic
   compile of the same mutant,

then asserts the two acceptance floors over the whole corpus:

* **unit reuse >= 90 %** — of all units across all mutant recompiles,
  at least nine in ten come from the cache;
* **delta speedup >= 3x** — total mutant-recompile wall time at least
  three times smaller than total cold-compile wall time.

The corpus uses the ``state-pattern`` generator: one event-handler
method per (state, event) pair, i.e. the pattern whose unit DAG is
fine-grained enough for structure sharing to mean something.  The
coarse patterns (nested-/flat-switch collapse the machine into ~5
functions) are covered by the byte-identity tests in
``tests/compiler/test_units.py``; a one-transition edit there rightly
recompiles the dispatch unit, which *is* most of the module.

Usage::

    python scripts/check_delta_compile.py [--reuse-floor 0.9]
        [--speedup-floor 3.0] [--level -Os] [--target rt32]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codegen import generator_by_name                     # noqa: E402
from repro.compiler import (OptLevel, compile_program,          # noqa: E402
                            compile_program_incremental, DeltaStats)
from repro.compiler.frontend.lower import lower_unit            # noqa: E402
from repro.engine.cache import CompileCache                     # noqa: E402
from repro.experiments.workload import (WorkloadSpec,           # noqa: E402
                                        generate_machine,
                                        mutate_one_transition)

PATTERN = "state-pattern"

#: The corpus: three sizes, distinct seeds, one shadowed composite in
#: the largest so hierarchy is represented.
CORPUS = (
    WorkloadSpec(n_live=12, events_per_state=3, seed=11),
    WorkloadSpec(n_live=20, events_per_state=3, seed=3),
    WorkloadSpec(n_live=24, events_per_state=2,
                 n_shadowed_composites=1, seed=29),
)


def lowered(machine):
    return lower_unit(generator_by_name(PATTERN).generate(machine))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="delta-compile reuse + speedup gate")
    parser.add_argument("--reuse-floor", type=float, default=0.9)
    parser.add_argument("--speedup-floor", type=float, default=3.0)
    parser.add_argument("--level", default="-Os",
                        choices=[l.value for l in OptLevel])
    parser.add_argument("--target", default="rt32")
    args = parser.parse_args(argv)
    level = OptLevel(args.level)

    cache = CompileCache()
    reuse = DeltaStats()
    cold_seconds = 0.0
    delta_seconds = 0.0
    rows = []

    for spec in CORPUS:
        machine = generate_machine(spec)
        compile_program_incremental(lowered(machine), level,
                                    target=args.target, unit_cache=cache,
                                    extra_key=PATTERN)
        mutant = mutate_one_transition(machine)

        t0 = time.perf_counter()
        per_machine = DeltaStats()
        delta = compile_program_incremental(
            lowered(mutant), level, target=args.target, unit_cache=cache,
            extra_key=PATTERN, stats_out=per_machine)
        delta_seconds += time.perf_counter() - t0
        reuse.total_units += per_machine.total_units
        reuse.reused_units += per_machine.reused_units

        program = lowered(mutant)
        t0 = time.perf_counter()
        mono = compile_program(program, level, target=args.target)
        cold_seconds += time.perf_counter() - t0

        if delta.module.listing() != mono.module.listing():
            sys.exit(f"FAIL {machine.name}: delta module differs from "
                     "monolithic compile of the same mutant")
        rows.append((machine.name, per_machine))

    speedup = cold_seconds / delta_seconds if delta_seconds else float("inf")
    for name, st in rows:
        print(f"  {name}: reused {st.reused_units}/{st.total_units} units "
              f"({st.reuse_rate:.0%})")
    print(f"corpus: reuse {reuse.reused_units}/{reuse.total_units} "
          f"({reuse.reuse_rate:.1%}), cold {1e3 * cold_seconds:.0f} ms, "
          f"delta {1e3 * delta_seconds:.0f} ms -> {speedup:.1f}x; "
          f"all mutant modules byte-identical to monolithic compiles")

    if reuse.reuse_rate < args.reuse_floor:
        sys.exit(f"FAIL: unit reuse {reuse.reuse_rate:.1%} below the "
                 f"{args.reuse_floor:.0%} floor")
    if speedup < args.speedup_floor:
        sys.exit(f"FAIL: delta speedup {speedup:.1f}x below the "
                 f"{args.speedup_floor}x floor")
    print("OK: delta-compile floors cleared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
