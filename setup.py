"""Setup shim for environments without the `wheel` package.

`pip install -e .` in this offline environment falls back to the legacy
setup.py code path; all real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
