# Compile-service cluster image.
#
# Runs `python -m repro.service serve` as a multi-worker cluster over a
# consistent-hash-sharded artifact store (mount /data to persist it):
#
#   docker build -t repro-service .
#   docker run -p 9090:9090 -v repro-store:/data repro-service
#
# Override workers/shards/queue by replacing the command:
#
#   docker run -p 9090:9090 repro-service \
#       python -m repro.service serve --host 0.0.0.0 --port 9090 \
#           --workers 4 --shards 4 --cache-dir /data/store --queue-limit 128
#
# The CI SLO gate (scripts/check_service_slo.py) runs inside this image
# so the gated binary is the shipped binary.

FROM python:3.12-slim

WORKDIR /app

# Install exactly what the wheel needs first, so source edits don't
# bust the dependency layer.  The package is dependency-free; the test
# extra pulls the SLO gate's runtime (pytest et al. for CI use).
COPY pyproject.toml setup.py README.md ./
COPY src ./src
COPY scripts ./scripts
RUN pip install --no-cache-dir -e ".[test]"

RUN mkdir -p /data
VOLUME ["/data"]

EXPOSE 9090

# Serving defaults: 2 workers x 2 store shards behind a bounded queue.
CMD ["python", "-m", "repro.service", "serve", \
     "--host", "0.0.0.0", "--port", "9090", \
     "--workers", "2", "--shards", "2", \
     "--cache-dir", "/data/store", "--queue-limit", "64"]
